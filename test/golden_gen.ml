(* Golden-trace generator for the measurement plane.

   Emits deterministic digests of four end-to-end behaviours into
   [golden_*.actual] files; dune diffs them against the committed
   fixtures under [fixtures/] on every [dune runtest], so any drift in
   the RNG streams, the fault model, per-link profiles, churn schedules
   or the protocol layers above them shows up as a readable diff.
   After an intentional change, refresh the fixtures with
   [dune promote].

   Everything is seeded and float output is rounded, so the digests are
   stable across runs and (modulo libm last-ulp drift, which the small
   precision absorbs) across machines. *)

module Rng = Tivaware_util.Rng
module Stats = Tivaware_util.Stats
module Matrix = Tivaware_delay_space.Matrix
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Severity = Tivaware_tiv.Severity
module Eval = Tivaware_tiv.Eval
module System = Tivaware_vivaldi.System
module Ring = Tivaware_meridian.Ring
module Query = Tivaware_meridian.Query
module Selectors = Tivaware_core.Selectors
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Profile = Tivaware_measure.Profile
module Churn = Tivaware_measure.Churn
module Dynamics = Tivaware_measure.Dynamics
module Arbiter = Tivaware_measure.Arbiter
module Probe_stats = Tivaware_measure.Probe_stats
module Sim = Tivaware_eventsim.Sim
module Zipf = Tivaware_util.Zipf
module Overlay = Tivaware_meridian.Overlay
module Dynamic_neighbors = Tivaware_vivaldi.Dynamic_neighbors
module Chord = Tivaware_dht.Chord
module Multicast = Tivaware_overlay.Multicast
module Backend = Tivaware_backend.Delay_backend
module Store_ring = Tivaware_store.Ring
module Store_policy = Tivaware_store.Policy
module Store_scenario = Tivaware_store.Scenario

let n = 80
let world_seed = 7

let data = Datasets.generate ~size:n ~seed:world_seed Datasets.Ds2
let m = data.Generator.matrix
let cluster_of = data.Generator.cluster_of

let engine ?profile ?churn ?dynamics ?(charge_time = false) ~loss ~jitter ~seed
    () =
  Engine.of_matrix
    ~config:
      {
        Engine.fault =
          { Fault.default with Fault.loss; jitter; retries = 1 };
        profile;
        churn;
        dynamics;
        budget = None;
        cache_ttl = None;
        cache_capacity = None;
        charge_time;
        seed;
      }
    m

let with_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

(* ------------------------------------------------------------------ *)
(* Vivaldi: final coordinates and error estimates after embedding
   through a faulty engine. *)

let vivaldi () =
  with_file "golden_vivaldi.actual" (fun oc ->
      let e = engine ~loss:0.05 ~jitter:0.1 ~seed:11 () in
      let system =
        Selectors.embed_vivaldi_engine ~rounds:60 (Rng.create 13) e
      in
      Printf.fprintf oc "# vivaldi final coordinates: n=%d rounds=60 loss=0.05 jitter=0.10\n" n;
      for i = 0 to n - 1 do
        let c = System.coord system i in
        Printf.fprintf oc "%03d err=%.4f [%s]\n" i
          (System.error_estimate system i)
          (String.concat " "
             (Array.to_list (Array.map (Printf.sprintf "%.3f") c)))
      done;
      let st = Engine.stats e in
      Printf.fprintf oc "probes issued=%d lost=%d failed=%d\n"
        st.Probe_stats.issued st.Probe_stats.lost st.Probe_stats.failed)

(* ------------------------------------------------------------------ *)
(* Meridian: a query trace through a topology-derived profile. *)

let meridian () =
  with_file "golden_meridian.actual" (fun oc ->
      let profile = Profile.topology ~loss:0.1 ~jitter:0.2 ~cluster_of () in
      let e = engine ~profile ~loss:0.1 ~jitter:0.2 ~seed:17 () in
      let nodes = Rng.sample_indices (Rng.create 19) ~n ~k:24 in
      let cfg = Ring.unlimited_config n in
      let overlay = Selectors.meridian_build m cfg (Rng.create 23) nodes in
      Printf.fprintf oc
        "# meridian query trace: n=%d meridian=24 profile=topo loss=0.10 jitter=0.20\n"
        n;
      let pick = Rng.create 29 in
      for q = 0 to 39 do
        let start = nodes.(Rng.int pick (Array.length nodes)) in
        let target = Rng.int pick n in
        if Array.mem target nodes || Matrix.is_missing m start target then
          Printf.fprintf oc "q%02d start=%02d target=%02d skipped\n" q start
            target
        else begin
          let o =
            Query.closest_engine ~termination:Query.Any_improvement overlay e
              ~start ~target
          in
          Printf.fprintf oc
            "q%02d start=%02d target=%02d chosen=%02d delay=%s probes=%d hops=%d path=%s\n"
            q start target o.Query.chosen
            (if Float.is_nan o.Query.chosen_delay then "nan"
             else Printf.sprintf "%.2f" o.Query.chosen_delay)
            o.Query.probes o.Query.hops
            (String.concat "," (List.map string_of_int o.Query.path))
        end
      done;
      let st = Engine.stats e in
      Printf.fprintf oc "probes issued=%d lost=%d failed=%d down=%d\n"
        st.Probe_stats.issued st.Probe_stats.lost st.Probe_stats.failed
        st.Probe_stats.down)

(* ------------------------------------------------------------------ *)
(* TIV alert: severity CDF digest and engine-measured alert quality. *)

let alert () =
  with_file "golden_alert.actual" (fun oc ->
      let severity = Severity.all m in
      let sev = Matrix.delays severity in
      Printf.fprintf oc "# tiv alert: severity CDF digest and alert sweep\n";
      Printf.fprintf oc "severity edges=%d\n" (Array.length sev);
      List.iter
        (fun p ->
          Printf.fprintf oc "severity p%02.0f=%.4f\n" p (Stats.percentile sev p))
        [ 10.; 25.; 50.; 75.; 90.; 99. ];
      let system = Selectors.embed_vivaldi (Rng.create 31) m in
      let e = engine ~loss:0.05 ~jitter:0.1 ~seed:37 () in
      let points =
        Eval.evaluate_engine ~engine:e
          ~predicted:(fun i j -> System.predicted system i j)
          ~severity ~worst_fraction:0.1 ~thresholds:Eval.default_thresholds
      in
      List.iter
        (fun p ->
          Printf.fprintf oc
            "threshold=%.1f alerts=%d accuracy=%.4f recall=%.4f\n"
            p.Eval.threshold p.Eval.alerts p.Eval.accuracy p.Eval.recall)
        points)

(* ------------------------------------------------------------------ *)
(* Profiles and churn: per-link parameters and a schedule digest. *)

let profile () =
  with_file "golden_profile.actual" (fun oc ->
      let topo = Profile.topology ~loss:0.1 ~jitter:0.2 ~cluster_of () in
      let random = Profile.random ~loss:0.1 ~jitter:0.2 ~seed:41 () in
      Printf.fprintf oc "# per-link profiles (sample links) and churn schedule\n";
      let pick = Rng.create 43 in
      for _ = 1 to 12 do
        let i = Rng.int pick n in
        let j = (i + 1 + Rng.int pick (n - 1)) mod n in
        let pr name p =
          let l = Profile.link p i j in
          Printf.fprintf oc
            "%s %02d->%02d loss=%.4f jitter=%.4f outage=%.1f extra=%.1f\n" name
            i j l.Profile.loss l.Profile.jitter l.Profile.outage
            l.Profile.extra_delay
        in
        pr "topo  " topo;
        pr "random" random
      done;
      let churn =
        Churn.create ~config:{ Churn.default with Churn.seed = 47 } ~n ()
      in
      Array.iter
        (fun t ->
          Churn.advance_to churn t;
          let up = ref 0 in
          let bits = Buffer.create n in
          for i = 0 to n - 1 do
            if Churn.is_up churn i then begin
              incr up;
              Buffer.add_char bits '1'
            end
            else Buffer.add_char bits '0'
          done;
          Printf.fprintf oc "churn t=%03.0f transitions=%d up=%d %s\n" t
            (Churn.transitions churn) !up (Buffer.contents bits))
        [| 0.; 30.; 60.; 120.; 240. |];
      (* A charged workload over a random profile with churn: the full
         stack (profile draws, outage windows, retry accounting, clock
         charging) in one digest. *)
      let e =
        engine ~profile:random
          ~churn:{ Churn.default with Churn.seed = 47 }
          ~charge_time:true ~loss:0.1 ~jitter:0.2 ~seed:53 ()
      in
      let wl = Rng.create 59 in
      for _ = 1 to 600 do
        let i = Rng.int wl n in
        let j = (i + 1 + Rng.int wl (n - 1)) mod n in
        ignore (Engine.rtt e i j)
      done;
      Printf.fprintf oc "workload clock=%.3f stats: %s\n" (Engine.now e)
        (Format.asprintf "%a" Probe_stats.pp (Engine.stats e)))

(* ------------------------------------------------------------------ *)
(* Dynamics: diurnal sweep snapshot and a route-flap workload digest. *)

let dynamics () =
  with_file "golden_dynamics.actual" (fun oc ->
      Printf.fprintf oc
        "# time-varying profiles: diurnal sweep and route-flap workload\n";
      (* Diurnal modulation of a topology profile, sampled at period
         fractions over one full cycle. *)
      let base = Profile.topology ~loss:0.1 ~jitter:0.2 ~cluster_of () in
      let d =
        Dynamics.create
          ~config:
            {
              Dynamics.diurnal =
                Some
                  {
                    Dynamics.period = 240.;
                    loss_amplitude = 0.8;
                    jitter_amplitude = 0.6;
                    phase = 0.;
                  };
              route_flap = None;
              seed = 61;
            }
          base
      in
      let pick = Rng.create 67 in
      let links =
        List.init 6 (fun _ ->
            let i = Rng.int pick n in
            (i, (i + 1 + Rng.int pick (n - 1)) mod n))
      in
      Array.iter
        (fun t ->
          Dynamics.advance_to d t;
          List.iter
            (fun (i, j) ->
              let l = Dynamics.link d i j in
              Printf.fprintf oc
                "diurnal t=%03.0f %02d->%02d loss=%.4f jitter=%.4f extra=%.1f\n"
                t i j l.Profile.loss l.Profile.jitter l.Profile.extra_delay)
            links)
        [| 0.; 60.; 120.; 180.; 240. |];
      (* A charged workload through a route-flapping engine: extra
         delays re-drawn mid-run show up in the clock, the stats and
         the route-change counter. *)
      let e =
        engine
          ~dynamics:
            {
              Dynamics.diurnal = None;
              route_flap = Some { Dynamics.rate = 0.05; max_extra = 50. };
              seed = 61;
            }
          ~charge_time:true ~loss:0.05 ~jitter:0.1 ~seed:71 ()
      in
      let wl = Rng.create 73 in
      for _ = 1 to 600 do
        let i = Rng.int wl n in
        let j = (i + 1 + Rng.int wl (n - 1)) mod n in
        ignore (Engine.rtt e i j)
      done;
      let de = Option.get (Engine.dynamics e) in
      Printf.fprintf oc "routeflap clock=%.3f route_changes=%d stats: %s\n"
        (Engine.now e) (Dynamics.route_changes de)
        (Format.asprintf "%a" Probe_stats.pp (Engine.stats e)))

(* ------------------------------------------------------------------ *)
(* Repair: a churn burst driven through all four protocol repair
   passes, with per-step convergence counters and the final per-label
   probe accounting. *)

let repair () =
  with_file "golden_repair.actual" (fun oc ->
      Printf.fprintf oc
        "# churn burst -> repair convergence (vivaldi/chord/meridian/multicast)\n";
      let churn =
        { Churn.fraction = 0.4; mean_up = 60.; mean_down = 120.; seed = 79 }
      in
      let e = engine ~churn ~loss:0. ~jitter:0. ~seed:83 () in
      let c = Option.get (Engine.churn e) in
      let sys = System.create_with_engine (Rng.create 89) e in
      let chord = Chord.build_engine ~successor_list:8 e in
      let nodes = Rng.sample_indices (Rng.create 97) ~n ~k:24 in
      let overlay =
        Overlay.build (Rng.create 101) m (Ring.unlimited_config n)
          ~meridian_nodes:nodes
      in
      let root =
        let r = ref (-1) in
        for i = n - 1 downto 0 do
          if not (Churn.churning c i) then r := i
        done;
        !r
      in
      let join_order =
        let rest =
          Array.of_list (List.filter (( <> ) root) (List.init n Fun.id))
        in
        Rng.shuffle (Rng.create 103) rest;
        Array.append [| root |] rest
      in
      let tree = Multicast.build_engine e ~join_order in
      let tree_rng = Rng.create 107 in
      Array.iter
        (fun t ->
          Engine.advance_to e t;
          let up = ref 0 in
          for i = 0 to n - 1 do
            if Churn.is_up c i then incr up
          done;
          let v = Dynamic_neighbors.repair_neighbors sys in
          let h = Chord.heal_engine chord e in
          let r = Overlay.repair_engine overlay e in
          let mr = Multicast.repair_engine tree tree_rng e in
          Printf.fprintf oc
            "t=%03.0f up=%02d | vivaldi ev=%d rs=%d | chord rerouted=%d \
             marked=%d revived=%d | meridian ev=%d re=%d pending=%d | \
             multicast det=%d att=%d rej=%d members=%d\n"
            t !up v.Dynamic_neighbors.evicted v.Dynamic_neighbors.resampled
            h.Chord.rerouted h.Chord.marked_dead h.Chord.revived
            r.Overlay.evicted r.Overlay.reentered
            (Overlay.pending_reentries overlay)
            mr.Multicast.detached mr.Multicast.reattached mr.Multicast.rejoined
            (List.length (Multicast.members tree)))
        [| 0.; 50.; 100.; 150.; 200.; 300.; 400. |];
      let st = Engine.stats e in
      Printf.fprintf oc "probes issued=%d down=%d unmeasured=%d labels: %s\n"
        st.Probe_stats.issued st.Probe_stats.down st.Probe_stats.unmeasured
        (String.concat " "
           (List.map
              (fun (l, k) -> Printf.sprintf "%s=%d" l k)
              (Probe_stats.labels st))))

(* ------------------------------------------------------------------ *)
(* Continuous stabilization: periodic stabilize/notify/fix-fingers as
   recurring simulator events under burst churn, with an arbitrated
   probe budget, key re-homing, and a Zipf lookup workload — the full
   background-vs-foreground stack in one digest. *)

let stabilize () =
  with_file "golden_stabilize.actual" (fun oc ->
      Printf.fprintf oc
        "# continuous chord stabilization under burst churn (arbitrated)\n";
      let churn =
        { Churn.fraction = 0.4; mean_up = 60.; mean_down = 120.; seed = 109 }
      in
      let e = engine ~churn ~loss:0. ~jitter:0. ~seed:113 () in
      let c = Option.get (Engine.churn e) in
      let chord = Chord.build_engine ~successor_list:8 e in
      let module Id_space = Tivaware_dht.Id_space in
      let krng = Rng.create 127 in
      (* spread over the whole id space; low bits carry the index so
         the 64 ids are distinct by construction *)
      let keys =
        Array.init 64 (fun i ->
            (Rng.int krng (Id_space.modulus lsr 6) lsl 6) lor i)
      in
      let store = Chord.Store.create ~replicas:2 chord ~keys in
      let arbiter =
        Arbiter.create
          (Arbiter.config ~capacity:400. ~rate:200.
             ~shares:[ ("chord_stabilize", 1.); ("dht", 3.) ])
      in
      let config =
        {
          Chord.Stabilizer.default_config with
          Chord.Stabilizer.interval = 5.;
          fingers_per_round = 4;
        }
      in
      let stab = Chord.Stabilizer.create ~config ~arbiter ~store chord e in
      let sim = Sim.create () in
      Chord.Stabilizer.schedule stab sim;
      let zipf = Zipf.create ~n:64 ~s:0.9 in
      let wl = Rng.create 131 in
      let looked = ref 0 and correct = ref 0 in
      for i = 0 to 119 do
        Sim.schedule_at sim (float_of_int (i * 2) +. 1.5) (fun () ->
            let source = Rng.int wl n in
            let key = keys.(Zipf.sample zipf wl) in
            if Churn.is_up c source then begin
              incr looked;
              let l =
                Chord.lookup_fn chord
                  (fun u v -> Engine.rtt ~label:"dht" e u v)
                  ~source ~key
              in
              if
                Churn.is_up c l.Chord.owner
                && Chord.Store.holds store ~key ~node:l.Chord.owner
              then incr correct
            end)
      done;
      Array.iter
        (fun t ->
          Sim.run sim ~until:t;
          let up = ref 0 in
          for i = 0 to n - 1 do
            if Churn.is_up c i then incr up
          done;
          let s = Chord.Stabilizer.totals stab in
          Printf.fprintf oc
            "t=%03.0f up=%02d rounds=%d checked=%d rerouted=%d marked=%d \
             revived=%d denied=%d migrated=%d rehomes=%d lookups=%d correct=%d\n"
            t !up s.Chord.Stabilizer.rounds s.Chord.Stabilizer.checked
            s.Chord.Stabilizer.rerouted s.Chord.Stabilizer.marked_dead
            s.Chord.Stabilizer.revived s.Chord.Stabilizer.denied
            (Chord.Store.migrated store) (Chord.Store.rehomes store) !looked
            !correct)
        [| 0.; 40.; 80.; 120.; 160.; 200.; 240. |];
      (* Structural spot checks: ring pointers and key placements. *)
      for u = 0 to 7 do
        let node = u * 10 in
        Printf.fprintf oc "node %02d succ=%02d pred=%02d fingers=%d\n" node
          (Chord.successor chord node)
          (Chord.predecessor chord node)
          (Array.length (Chord.fingers chord node))
      done;
      for i = 0 to 7 do
        let k = i * 8 in
        Printf.fprintf oc "key %02d primary=%02d holders=%s\n" k
          (Chord.Store.primary_of store k)
          (String.concat ","
             (List.map string_of_int
                (Array.to_list (Chord.Store.holders store k))))
      done;
      let st = Engine.stats e in
      Printf.fprintf oc "probes issued=%d down=%d unmeasured=%d labels: %s\n"
        st.Probe_stats.issued st.Probe_stats.down st.Probe_stats.unmeasured
        (String.concat " "
           (List.map
              (fun (l, k) -> Printf.sprintf "%s=%d" l k)
              (Probe_stats.labels st))))

(* ------------------------------------------------------------------ *)
(* Store: ring placement, a TIV-alerted read trace under churn and
   diurnal dynamics, and the arbitrated repair plane. *)

let store () =
  with_file "golden_store.actual" (fun oc ->
      Printf.fprintf oc
        "# store reads over a consistent-hashing ring (alert policy, \
         churn + diurnal dynamics, arbitrated repair)\n";
      let backend = Backend.dense m in
      let churn =
        { Churn.fraction = 0.25; mean_up = 50.; mean_down = 15.; seed = 151 }
      in
      let e =
        Backend.engine
          ~config:
            {
              Engine.fault =
                { Fault.default with Fault.loss = 0.03; jitter = 0.05; retries = 1 };
              profile = None;
              churn = Some churn;
              dynamics =
                Some
                  {
                    Dynamics.default with
                    Dynamics.diurnal = Some Dynamics.default_diurnal;
                    seed = 157;
                  };
              budget = None;
              cache_ttl = None;
              cache_capacity = None;
              charge_time = false;
              seed = 157;
            }
          backend
      in
      let system = Selectors.embed_vivaldi (Rng.create 163) m in
      let policy =
        Store_policy.alert (fun i j -> System.predicted system i j)
      in
      let config =
        {
          Store_scenario.default_config with
          Store_scenario.devices = 16;
          zones = 4;
          part_power = 5;
          replicas = 3;
          objects = 64;
          zipf_s = 0.9;
          reads = 100;
          duration = 100.;
          repair_interval = 10.;
          seed = 21;
        }
      in
      let arbiter =
        Arbiter.create
          (Arbiter.config ~capacity:24. ~rate:2.
             ~shares:[ ("store_repair", 1.); ("store", 1.) ])
      in
      let sc =
        Store_scenario.create ~arbiter ~config ~policy ~backend ~engine:e ()
      in
      let ring = Store_scenario.ring sc in
      Array.iter
        (fun (d : Store_ring.device) ->
          Printf.fprintf oc
            "device %02d node=%02d zone=%d weight=%.1f share=%.2f assigned=%d\n"
            d.Store_ring.id d.Store_ring.node d.Store_ring.zone
            d.Store_ring.weight
            (Store_ring.desired_share ring d.Store_ring.id)
            (Store_ring.assigned ring d.Store_ring.id))
        (Store_ring.devices ring);
      for p = 0 to Store_ring.parts ring - 1 do
        let ids a =
          String.concat ","
            (List.map string_of_int (Array.to_list a))
        in
        let ho = Store_ring.handoff ring p in
        Printf.fprintf oc "part %02d -> %s handoff=%s\n" p
          (ids (Store_ring.assignment ring p))
          (ids (Array.sub ho 0 (min 4 (Array.length ho))))
      done;
      let i = ref 0 in
      let result =
        Store_scenario.run
          ~trace:(fun (o : Store_scenario.read_outcome) ->
            incr i;
            Printf.fprintf oc
              "read %03d obj=%02d part=%02d client=%02d dev=%s lat=%.4f \
               probes=%d attempts=%d%s\n"
              !i o.Store_scenario.obj o.Store_scenario.part
              o.Store_scenario.client
              (match o.Store_scenario.device with
              | Some d -> Printf.sprintf "%02d" d
              | None -> "--")
              o.Store_scenario.latency_ms o.Store_scenario.probes
              o.Store_scenario.attempts
              (if o.Store_scenario.handoff then " handoff" else ""))
          ~repair_trace:(fun (r : Store_scenario.pass_outcome) ->
            Printf.fprintf oc
              "repair pass=%02d t=%05.1f checked=%d rehomed=%d restored=%d \
               denied=%d\n"
              r.Store_scenario.pass r.Store_scenario.time
              r.Store_scenario.checked r.Store_scenario.rehomed
              r.Store_scenario.restored r.Store_scenario.denied)
          sc
      in
      Printf.fprintf oc
        "result issued=%d completed=%d failed=%d skipped=%d handoffs=%d \
         dead_attempts=%d policy_probes=%d\n"
        result.Store_scenario.issued result.Store_scenario.completed
        result.Store_scenario.failed result.Store_scenario.skipped
        result.Store_scenario.handoffs result.Store_scenario.dead_attempts
        result.Store_scenario.policy_probes;
      let rt = result.Store_scenario.repair in
      Printf.fprintf oc
        "repair totals passes=%d checked=%d rehomed=%d restored=%d denied=%d\n"
        rt.Store_scenario.passes rt.Store_scenario.total_checked
        rt.Store_scenario.total_rehomed rt.Store_scenario.total_restored
        rt.Store_scenario.total_denied;
      let lat = result.Store_scenario.latencies in
      if Array.length lat > 0 then begin
        let lat = Array.copy lat in
        Array.sort compare lat;
        Printf.fprintf oc "latency p50=%.4f p90=%.4f p99=%.4f\n"
          (Stats.percentile lat 50.) (Stats.percentile lat 90.)
          (Stats.percentile lat 99.)
      end;
      let st = Engine.stats e in
      Printf.fprintf oc "probes issued=%d down=%d unmeasured=%d labels: %s\n"
        st.Probe_stats.issued st.Probe_stats.down st.Probe_stats.unmeasured
        (String.concat " "
           (List.map
              (fun (l, k) -> Printf.sprintf "%s=%d" l k)
              (Probe_stats.labels st))))

let () =
  vivaldi ();
  meridian ();
  alert ();
  profile ();
  dynamics ();
  repair ();
  stabilize ();
  store ()
