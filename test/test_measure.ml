(* Tests for the measurement plane: oracle, budgets, TTL cache, fault
   injection, probe accounting, and the oracle-mode equivalence of the
   rewired protocol layers. *)

module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Euclidean = Tivaware_topology.Euclidean
module Oracle = Tivaware_measure.Oracle
module Budget = Tivaware_measure.Budget
module Cache = Tivaware_measure.Cache
module Fault = Tivaware_measure.Fault
module Arbiter = Tivaware_measure.Arbiter
module Engine = Tivaware_measure.Engine
module Probe_stats = Tivaware_measure.Probe_stats
module System = Tivaware_vivaldi.System
module Ring = Tivaware_meridian.Ring
module Overlay = Tivaware_meridian.Overlay
module Query = Tivaware_meridian.Query

let checkf = Alcotest.check (Alcotest.float 1e-9)
let checki = Alcotest.(check int)

let euclidean_matrix seed n =
  Euclidean.uniform_box (Rng.create seed) ~n ~dim:3 ~side_ms:300.

let engine ?(fault = Fault.default) ?profile ?churn ?dynamics ?budget
    ?cache_ttl ?cache_capacity ?(charge_time = false) ?(seed = 7) m =
  Engine.of_matrix
    ~config:
      {
        Engine.fault;
        profile;
        churn;
        dynamics;
        budget;
        cache_ttl;
        cache_capacity;
        charge_time;
        seed;
      }
    m

(* ------------------------------------------------------------------ *)
(* Oracle                                                              *)

let test_oracle_matrix () =
  let m = euclidean_matrix 1 20 in
  let o = Oracle.of_matrix m in
  checki "size" 20 (Oracle.size o);
  checkf "lookup" (Matrix.get m 3 9) (Oracle.query o 3 9);
  checkf "diagonal" 0. (Oracle.query o 4 4);
  Alcotest.(check bool) "matrix recoverable" true (Oracle.matrix o = Some m)

let test_oracle_fn () =
  let o = Oracle.of_fn ~size:5 (fun i j -> float_of_int (i + j)) in
  checkf "fn lookup" 7. (Oracle.query o 3 4);
  Alcotest.check_raises "matrix_exn raises"
    (Invalid_argument "Oracle.matrix_exn: function-backed oracle") (fun () ->
      ignore (Oracle.matrix_exn o))

(* ------------------------------------------------------------------ *)
(* Oracle-mode equivalence: the rewired layers reproduce seed results  *)

let test_default_engine_is_oracle () =
  let m = euclidean_matrix 2 30 in
  let e = Engine.of_matrix m in
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    let i = Rng.int rng 30 and j = Rng.int rng 30 in
    checkf "rtt = Matrix.get" (Matrix.get m i j) (Engine.rtt e i j)
  done;
  let st = Engine.stats e in
  checki "every request issued" st.Probe_stats.requests st.Probe_stats.issued;
  checki "nothing lost" 0 st.Probe_stats.lost;
  checki "nothing denied" 0 st.Probe_stats.denied

let test_vivaldi_engine_path_identical () =
  let m = euclidean_matrix 4 40 in
  let a = System.create (Rng.create 5) m in
  let b = System.create_with_engine (Rng.create 5) (Engine.of_matrix m) in
  System.run a ~rounds:30;
  System.run b ~rounds:30;
  for i = 0 to 39 do
    let ca = System.coord a i and cb = System.coord b i in
    Array.iteri (fun d v -> checkf "coordinate equal" v cb.(d)) ca
  done

let test_meridian_engine_path_identical () =
  let m = euclidean_matrix 6 60 in
  let rng = Rng.create 7 in
  let nodes = Rng.sample_indices rng ~n:60 ~k:30 in
  let overlay =
    Overlay.build (Rng.create 8) m Ring.default_config ~meridian_nodes:nodes
  in
  let target =
    Array.to_list (Rng.permutation (Rng.create 9) 60)
    |> List.find (fun i -> not (Overlay.is_meridian overlay i))
  in
  let start = nodes.(0) in
  let a = Query.closest overlay m ~start ~target in
  let b = Query.closest_engine overlay (Engine.of_matrix m) ~start ~target in
  checki "same chosen" a.Query.chosen b.Query.chosen;
  checkf "same delay" a.Query.chosen_delay b.Query.chosen_delay;
  checki "same probes" a.Query.probes b.Query.probes;
  checki "same hops" a.Query.hops b.Query.hops

(* ------------------------------------------------------------------ *)
(* Cache TTL                                                           *)

let test_cache_ttl_expiry () =
  let m = euclidean_matrix 10 20 in
  let e = engine ~cache_ttl:10. m in
  let d1 = Engine.rtt e 1 2 in
  let st = Engine.stats e in
  checki "first lookup misses" 1 st.Probe_stats.misses;
  checki "first lookup issued" 1 st.Probe_stats.issued;
  let d2 = Engine.rtt e 1 2 in
  checkf "served from cache" d1 d2;
  checki "hit recorded" 1 st.Probe_stats.hits;
  checki "no extra probe" 1 st.Probe_stats.issued;
  (* Symmetric key: the reverse direction hits too. *)
  ignore (Engine.rtt e 2 1);
  checki "reverse direction hits" 2 st.Probe_stats.hits;
  Engine.advance e 10.5;
  ignore (Engine.rtt e 1 2);
  checki "expired entry is stale" 1 st.Probe_stats.stale;
  checki "stale entry re-probed" 2 st.Probe_stats.issued;
  (* The re-probe refreshed the entry at t=10.5. *)
  ignore (Engine.rtt e 1 2);
  checki "refreshed entry hits again" 3 st.Probe_stats.hits

let test_cache_unit () =
  let c = Cache.create ~ttl:5. () in
  Alcotest.(check bool) "miss on empty" true (Cache.find c ~now:0. 1 2 = Cache.Miss);
  checki "no eviction on store" 0 (Cache.store c ~now:0. 1 2 42.);
  Alcotest.(check bool) "hit fresh" true (Cache.find c ~now:4. 2 1 = Cache.Hit 42.);
  Alcotest.(check bool) "hit at ttl boundary" true
    (Cache.find c ~now:5. 1 2 = Cache.Hit 42.);
  Alcotest.(check bool) "stale past ttl" true
    (Cache.find c ~now:5.1 1 2 = Cache.Stale);
  Alcotest.(check bool) "stale evicts" true (Cache.find c ~now:5.1 1 2 = Cache.Miss);
  checki "nan not stored" 0 (Cache.store c ~now:0. 3 4 nan);
  Alcotest.(check bool) "nan not cached" true (Cache.find c ~now:0. 3 4 = Cache.Miss)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 ~ttl:100. () in
  checki "store a" 0 (Cache.store c ~now:0. 0 1 10.);
  checki "store b" 0 (Cache.store c ~now:0. 0 2 20.);
  (* Touch (0,1) so (0,2) becomes the LRU entry. *)
  Alcotest.(check bool) "touch a" true (Cache.find c ~now:1. 0 1 = Cache.Hit 10.);
  checki "third store evicts one" 1 (Cache.store c ~now:1. 0 3 30.);
  checki "length bounded" 2 (Cache.length c);
  Alcotest.(check bool) "LRU entry gone" true (Cache.find c ~now:1. 0 2 = Cache.Miss);
  Alcotest.(check bool) "recent entry kept" true
    (Cache.find c ~now:1. 0 1 = Cache.Hit 10.);
  Alcotest.(check bool) "new entry kept" true
    (Cache.find c ~now:1. 0 3 = Cache.Hit 30.);
  (* Re-storing a resident pair refreshes in place: no eviction. *)
  checki "refresh does not evict" 0 (Cache.store c ~now:2. 0 1 11.);
  checki "cumulative evictions" 1 (Cache.evictions c)

(* [find_code] is the non-allocating twin of [find] on the engine hot
   path: same outcome, same recency side effects (a hit refreshes LRU
   order, a stale lookup evicts), value returned through the out
   param. *)
let test_cache_find_code () =
  let c = Cache.create ~ttl:5. () in
  let into = [| nan |] in
  checki "miss on empty" Cache.code_miss (Cache.find_code c ~now:0. ~into 1 2);
  Alcotest.(check bool) "miss leaves out param untouched" true
    (Float.is_nan into.(0));
  ignore (Cache.store c ~now:0. 1 2 42.);
  checki "hit fresh" Cache.code_hit (Cache.find_code c ~now:4. ~into 2 1);
  checkf "hit stores the value" 42. into.(0);
  into.(0) <- (-1.);
  checki "stale past ttl" Cache.code_stale (Cache.find_code c ~now:5.1 ~into 1 2);
  checkf "stale leaves out param untouched" (-1.) into.(0);
  (* The stale lookup evicted, exactly like [find]. *)
  checki "stale evicted the entry" Cache.code_miss
    (Cache.find_code c ~now:5.1 ~into 1 2);
  (* A hit through find_code refreshes recency: after touching (0,1),
     the LRU victim of a full cache is (0,2), not (0,1). *)
  let c = Cache.create ~capacity:2 ~ttl:100. () in
  ignore (Cache.store c ~now:0. 0 1 10.);
  ignore (Cache.store c ~now:1. 0 2 20.);
  checki "touch the older entry" Cache.code_hit
    (Cache.find_code c ~now:2. ~into 0 1);
  checki "third store evicts one" 1 (Cache.store c ~now:3. 0 3 30.);
  checki "victim is the untouched entry" Cache.code_miss
    (Cache.find_code c ~now:3. ~into 0 2);
  checki "touched entry survives" Cache.code_hit
    (Cache.find_code c ~now:3. ~into 0 1);
  checkf "and still reads its value" 10. into.(0);
  checki "eviction counted" 1 (Cache.evictions c)

(* ------------------------------------------------------------------ *)
(* Fault injection out-param path                                      *)

(* [attempt_into] must consume the generator exactly as [attempt]
   does: two injectors with the same seed driven through the two entry
   points must agree drop-for-drop and sample-for-sample — that is
   what lets the engine hot path switch freely between them. *)
let test_fault_attempt_into_equivalence () =
  let config = { Fault.default with Fault.loss = 0.3; jitter = 0.2 } in
  let mk seed = Fault.create ~config (Rng.create seed) ~n:16 in
  let a = mk 42 and b = mk 42 in
  let into = [| nan |] in
  for k = 0 to 199 do
    let i = k mod 16 and j = (k * 7 + 1) mod 16 in
    let rtt = 50. +. float_of_int k in
    let boxed = Fault.attempt a i j ~rtt in
    let delivered = Fault.attempt_into b i j ~rtt ~into in
    match boxed with
    | Fault.Delivered d ->
        Alcotest.(check bool) "both delivered" true delivered;
        checkf "same jittered sample" d into.(0)
    | Fault.Dropped -> Alcotest.(check bool) "both dropped" false delivered
  done

let test_fault_attempt_into_reuse () =
  (* Certain loss: the out param is never written, so a stale value
     from an earlier call must survive — the engine reuses one array
     across every probe. *)
  let all_lost =
    Fault.create
      ~config:{ Fault.default with Fault.loss = 0.999999 }
      (Rng.create 5) ~n:4
  in
  let into = [| 123.25 |] in
  let any_delivered = ref false in
  for _ = 1 to 50 do
    if Fault.attempt_into all_lost 0 1 ~rtt:10. ~into then any_delivered := true
  done;
  Alcotest.(check bool) "everything dropped" false !any_delivered;
  checkf "dropped attempts never touch the out param" 123.25 into.(0);
  (* Fault-free: every call overwrites the same cell with the exact
     RTT (no jitter), regardless of what the previous call left. *)
  let clean = Fault.create (Rng.create 6) ~n:4 in
  Alcotest.(check bool) "delivered" true
    (Fault.attempt_into clean 0 1 ~rtt:17.5 ~into);
  checkf "sample written over the stale value" 17.5 into.(0);
  Alcotest.(check bool) "delivered again" true
    (Fault.attempt_into clean 1 2 ~rtt:3.25 ~into);
  checkf "cell reused" 3.25 into.(0)

(* ------------------------------------------------------------------ *)
(* Arbiter                                                             *)

let test_arbiter_shares () =
  (* Capacity 40 split 1:3 — the background plane can burst 10, the
     foreground 30, and neither can borrow from the other. *)
  let a =
    Arbiter.create
      (Arbiter.config ~capacity:40. ~rate:4.
         ~shares:[ ("chord_stabilize", 1.); ("dht", 3.) ])
  in
  let drain ?(now = 0.) plane =
    let k = ref 0 in
    while Arbiter.admit a ~now plane do
      incr k
    done;
    !k
  in
  checki "background carve" 10 (drain "chord_stabilize");
  checki "foreground carve" 30 (drain "dht");
  checki "granted counted" 10 (Arbiter.granted a "chord_stabilize");
  checki "denied counted" 1 (Arbiter.denied a "chord_stabilize");
  (* Refill is proportional to the share: 4 tokens/s split 1:3. *)
  Alcotest.(check bool) "background refilled one token" true
    (Arbiter.admit a ~now:1. "chord_stabilize");
  Alcotest.(check bool) "and only one" false
    (Arbiter.admit a ~now:1. "chord_stabilize");
  checki "foreground refilled three" 3 (drain ~now:1. "dht");
  (* Unlisted planes are never refused and never run dry. *)
  for _ = 1 to 100 do
    Alcotest.(check bool) "unlisted plane admitted" true
      (Arbiter.admit a ~now:1. "vivaldi")
  done;
  checkf "unlisted tokens are infinite" infinity
    (Arbiter.tokens a ~now:1. "vivaldi");
  (* The clock is monotonic per plane: a lagging [now] neither refills
     nor raises. *)
  Alcotest.(check bool) "stale clock grants nothing extra" false
    (Arbiter.admit a ~now:0.5 "chord_stabilize")

let test_arbiter_validation () =
  let bad cfg =
    match Arbiter.create cfg with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "empty shares rejected" true
    (bad (Arbiter.config ~capacity:10. ~rate:1. ~shares:[]));
  Alcotest.(check bool) "duplicate plane rejected" true
    (bad
       (Arbiter.config ~capacity:10. ~rate:1.
          ~shares:[ ("a", 1.); ("a", 2.) ]));
  Alcotest.(check bool) "non-positive weight rejected" true
    (bad (Arbiter.config ~capacity:10. ~rate:1. ~shares:[ ("a", 0.) ]));
  Alcotest.(check bool) "negative capacity rejected" true
    (bad (Arbiter.config ~capacity:(-1.) ~rate:1. ~shares:[ ("a", 1.) ]));
  Alcotest.(check bool) "NaN rate rejected" true
    (bad (Arbiter.config ~capacity:10. ~rate:nan ~shares:[ ("a", 1.) ]));
  (* A carve below one token could never admit anything: flagged at
     construction instead of silently denying forever. *)
  Alcotest.(check bool) "sub-token carve rejected" true
    (bad
       (Arbiter.config ~capacity:10. ~rate:1.
          ~shares:[ ("tiny", 0.001); ("big", 99.999) ]))

(* ------------------------------------------------------------------ *)
(* Budgets                                                             *)

let test_budget_exhaustion_fallback () =
  let m = euclidean_matrix 11 20 in
  (* Capacity 2, no refill within the test window (rate refills only as
     the clock advances, which we don't do here). *)
  let e = engine ~budget:(Budget.per_node ~capacity:2. ~rate:1.) m in
  let d1 = Engine.rtt e 0 1 and d2 = Engine.rtt e 0 2 in
  Alcotest.(check bool) "first two admitted" true
    (not (Float.is_nan d1) && not (Float.is_nan d2));
  (* Third probe from node 0 is denied: the caller sees nan and falls
     back, exactly like a missing measurement. *)
  Alcotest.(check bool) "third denied => nan" true (Float.is_nan (Engine.rtt e 0 3));
  Alcotest.(check bool) "probe outcome is Denied" true
    (Engine.probe e 0 4 = Engine.Denied);
  let st = Engine.stats e in
  checki "denials counted" 2 st.Probe_stats.denied;
  checki "only two probes issued" 2 st.Probe_stats.issued;
  (* Other nodes have their own buckets. *)
  Alcotest.(check bool) "peer bucket unaffected" true
    (not (Float.is_nan (Engine.rtt e 5 6)));
  (* Refill with the logical clock. *)
  Engine.advance e 2.;
  Alcotest.(check bool) "refilled after advance" true
    (not (Float.is_nan (Engine.rtt e 0 3)))

let test_budget_global_limit () =
  let m = euclidean_matrix 12 20 in
  let budget =
    {
      Budget.unlimited with
      Budget.global_capacity = 3.;
      global_rate = 0.;
    }
  in
  let e = engine ~budget m in
  for i = 0 to 2 do
    Alcotest.(check bool) "admitted" true (not (Float.is_nan (Engine.rtt e i (i + 10))))
  done;
  Alcotest.(check bool) "global bucket empty" true
    (Float.is_nan (Engine.rtt e 7 8));
  checki "denied" 1 (Engine.stats e).Probe_stats.denied

let test_budget_vivaldi_fallback () =
  (* A starved embedding still runs: denied observations are skipped. *)
  let m = euclidean_matrix 13 20 in
  let e = engine ~budget:(Budget.per_node ~capacity:1. ~rate:0.1) m in
  let s = System.create_with_engine (Rng.create 14) e in
  System.run s ~rounds:10;
  let st = Engine.stats e in
  Alcotest.(check bool) "some probes denied" true (st.Probe_stats.denied > 0);
  Alcotest.(check bool) "some probes admitted" true (st.Probe_stats.issued > 0)

(* ------------------------------------------------------------------ *)
(* Seeded jitter determinism                                           *)

let jitter_fault = { Fault.default with Fault.jitter = 0.25 }

let test_jitter_determinism () =
  let m = euclidean_matrix 15 30 in
  let sequence seed =
    let e = engine ~fault:jitter_fault ~seed m in
    Array.init 100 (fun k -> Engine.rtt e (k mod 29) ((k mod 7) + 23))
  in
  let a = sequence 42 and b = sequence 42 in
  Array.iteri (fun k v -> checkf "same seed, same samples" v b.(k)) a;
  let c = sequence 43 in
  Alcotest.(check bool) "different seed differs" true
    (Array.exists2 (fun x y -> x <> y) a c)

let test_jitter_bounds_and_bias () =
  let m = euclidean_matrix 16 30 in
  let e = engine ~fault:jitter_fault m in
  for _ = 1 to 50 do
    let i = 3 and j = 17 in
    let truth = Matrix.get m i j in
    let sample = Engine.rtt e i j in
    Alcotest.(check bool) "within multiplicative band" true
      (sample >= truth *. 0.75 && sample <= truth *. 1.25)
  done

(* ------------------------------------------------------------------ *)
(* Loss and retries                                                    *)

let test_loss_retry_accounting () =
  let m = euclidean_matrix 17 20 in
  (* Certain loss: every attempt drops, retries burn and fail. *)
  let e =
    engine ~fault:{ Fault.default with Fault.loss = 0.999999; retries = 2 } m
  in
  Alcotest.(check bool) "lost => nan" true (Float.is_nan (Engine.rtt e 0 1));
  Alcotest.(check bool) "outcome is Lost" true (Engine.probe e 0 2 = Engine.Lost);
  let st = Engine.stats e in
  checki "2 requests" 2 st.Probe_stats.requests;
  checki "3 attempts each" 6 st.Probe_stats.issued;
  checki "all attempts lost" 6 st.Probe_stats.lost;
  checki "2 retries each" 4 st.Probe_stats.retried;
  checki "both requests failed" 2 st.Probe_stats.failed

let test_retry_recovers () =
  let m = euclidean_matrix 18 20 in
  let truth_issued_failed loss retries seed =
    let e = engine ~fault:{ Fault.default with Fault.loss; retries } ~seed m in
    for k = 0 to 99 do
      ignore (Engine.rtt e (k mod 19) ((k mod 3) + 17))
    done;
    let st = Engine.stats e in
    (st.Probe_stats.issued, st.Probe_stats.failed)
  in
  let _, failed_no_retry = truth_issued_failed 0.5 0 5 in
  let issued_retry, failed_retry = truth_issued_failed 0.5 3 5 in
  Alcotest.(check bool) "retries reduce failures" true
    (failed_retry < failed_no_retry);
  Alcotest.(check bool) "retries cost probes" true (issued_retry > 100)

let test_outage () =
  let m = euclidean_matrix 19 20 in
  let e = engine m in
  Fault.set_down (Engine.fault e) 4 true;
  Alcotest.(check bool) "probe to down node" true (Engine.probe e 1 4 = Engine.Down);
  Alcotest.(check bool) "probe from down node" true (Engine.probe e 4 1 = Engine.Down);
  Alcotest.(check bool) "others fine" true (not (Float.is_nan (Engine.rtt e 1 2)));
  Fault.set_down (Engine.fault e) 4 false;
  Alcotest.(check bool) "back up" true (not (Float.is_nan (Engine.rtt e 1 4)));
  checki "down requests counted" 2 (Engine.stats e).Probe_stats.down

(* ------------------------------------------------------------------ *)
(* Per-label accounting                                                *)

let test_label_accounting () =
  let m = euclidean_matrix 20 20 in
  let e = engine m in
  ignore (Engine.rtt ~label:"vivaldi" e 0 1);
  ignore (Engine.rtt ~label:"vivaldi" e 0 2);
  ignore (Engine.rtt ~label:"meridian" e 3 4);
  ignore (Engine.rtt e 5 6);
  let st = Engine.stats e in
  checki "vivaldi" 2 (Probe_stats.label_count st "vivaldi");
  checki "meridian" 1 (Probe_stats.label_count st "meridian");
  checki "unlabeled not attributed" 0 (Probe_stats.label_count st "other");
  checki "total issued" 4 st.Probe_stats.issued;
  Alcotest.(check (list (pair string int)))
    "labels sorted"
    [ ("meridian", 1); ("vivaldi", 2) ]
    (Probe_stats.labels st)

let test_stats_snapshot_independent () =
  let m = euclidean_matrix 21 20 in
  let e = engine m in
  ignore (Engine.rtt e 0 1);
  let snap = Probe_stats.snapshot (Engine.stats e) in
  ignore (Engine.rtt e 0 2);
  checki "snapshot frozen" 1 snap.Probe_stats.issued;
  checki "live advanced" 2 (Engine.stats e).Probe_stats.issued

(* ------------------------------------------------------------------ *)
(* Degradation end-to-end: faults hurt Meridian where it matters       *)

let test_meridian_query_under_loss_degrades_gracefully () =
  let m = euclidean_matrix 22 80 in
  let rng = Rng.create 23 in
  let nodes = Rng.sample_indices rng ~n:80 ~k:40 in
  let overlay =
    Overlay.build (Rng.create 24) m Ring.default_config ~meridian_nodes:nodes
  in
  let e = engine ~fault:{ Fault.default with Fault.loss = 0.3 } ~seed:25 m in
  let targets =
    Array.to_list (Rng.permutation (Rng.create 26) 80)
    |> List.filter (fun i -> not (Overlay.is_meridian overlay i))
  in
  (* No exception under loss; failed queries surface as nan. *)
  List.iter
    (fun target ->
      let o = Query.closest_engine overlay e ~start:nodes.(0) ~target in
      Alcotest.(check bool) "probes counted" true (o.Query.probes >= 1))
    targets;
  Alcotest.(check bool) "some probes were lost" true
    ((Engine.stats e).Probe_stats.failed > 0)

let test_online_loss_inflates_simulator_time () =
  (* The same online query workload must take strictly more virtual
     time under 20% loss + jitter than against a lossless network:
     timeouts and retransmit backoff are charged to the simulator
     clock. *)
  let module Sim = Tivaware_eventsim.Sim in
  let module Online = Tivaware_meridian.Online in
  let m = euclidean_matrix 30 60 in
  let nodes = Rng.sample_indices (Rng.create 31) ~n:60 ~k:30 in
  let overlay =
    Overlay.build (Rng.create 32) m Ring.default_config ~meridian_nodes:nodes
  in
  let total_latency fault =
    let e = engine ~fault ~seed:33 m in
    let sim = Sim.create () in
    Online.attach sim e;
    let pick = Rng.create 34 in
    let acc = ref 0. in
    for _ = 1 to 40 do
      let client = Rng.int pick 60 in
      let start = nodes.(Rng.int pick (Array.length nodes)) in
      let target = Rng.int pick 60 in
      if not (Overlay.is_meridian overlay target) then begin
        let o = Online.closest_engine sim overlay e ~client ~start ~target in
        acc := !acc +. o.Online.latency
      end
    done;
    (!acc, (Engine.stats e).Probe_stats.probe_ms)
  in
  let clean, clean_ms = total_latency Fault.default in
  let lossy, lossy_ms =
    total_latency
      {
        Fault.default with
        Fault.loss = 0.2;
        jitter = 0.1;
        retries = 2;
        policy = Fault.Backoff Fault.default_backoff;
      }
  in
  Alcotest.(check bool) "lossless probes still cost wire time" true
    (clean_ms > 0.);
  Alcotest.(check bool)
    (Printf.sprintf "lossy total virtual time higher (%.0f vs %.0f ms)" lossy
       clean)
    true
    (lossy > clean);
  Alcotest.(check bool)
    (Printf.sprintf "lossy probe_ms higher (%.0f vs %.0f ms)" lossy_ms clean_ms)
    true
    (lossy_ms > clean_ms)

let test_adaptive_beats_fixed_retry_cost () =
  (* Under 20% loss, the adaptive policy must spend fewer wire attempts
     than always-retry-3 while keeping a comparable success rate.  The
     tolerance absorbs adaptive's warmup: until a prober's loss
     estimate rises from zero it grants no retries, so the first
     requests of each prober fail at the raw loss rate. *)
  let m = euclidean_matrix 35 40 in
  let run policy =
    let e =
      engine
        ~fault:{ Fault.default with Fault.loss = 0.2; retries = 3; policy }
        ~seed:36 m
    in
    let wl = Rng.create 37 in
    let requests = 3000 in
    for _ = 1 to requests do
      let i = Rng.int wl 40 in
      let j = (i + 1 + Rng.int wl 39) mod 40 in
      ignore (Engine.rtt e i j)
    done;
    let st = Engine.stats e in
    let success =
      float_of_int (requests - st.Probe_stats.failed) /. float_of_int requests
    in
    (st.Probe_stats.issued, success)
  in
  let fixed_issued, fixed_success = run Fault.Fixed in
  let adaptive_issued, adaptive_success =
    run (Fault.adaptive ~target_failure:0.01 ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "adaptive issues fewer attempts (%d vs %d)" adaptive_issued
       fixed_issued)
    true
    (adaptive_issued < fixed_issued);
  Alcotest.(check bool)
    (Printf.sprintf "success comparable (%.3f vs %.3f)" adaptive_success
       fixed_success)
    true
    (adaptive_success >= fixed_success -. 0.04)

(* ------------------------------------------------------------------ *)
(* Config validation                                                   *)

let test_config_validation_messages () =
  let m = euclidean_matrix 38 10 in
  let expect msg config =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (Engine.of_matrix ~config m))
  in
  expect
    "Engine.create: cache_ttl must be positive (got -3; omit the cache \
     instead of disabling it with a non-positive TTL)"
    { Engine.default_config with Engine.cache_ttl = Some (-3.) };
  expect "Engine.create: cache_capacity must be >= 1 (got 0)"
    { Engine.default_config with Engine.cache_ttl = Some 5.; cache_capacity = Some 0 };
  expect
    "Engine.create: cache_capacity requires cache_ttl (there is no cache to \
     bound)"
    { Engine.default_config with Engine.cache_capacity = Some 8 };
  Alcotest.(check bool) "zero-capacity budget rejected" true
    (match
       Engine.of_matrix
         ~config:
           {
             Engine.default_config with
             Engine.budget = Some (Budget.per_node ~capacity:0. ~rate:1.);
           }
         m
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "loss above 1 rejected" true
    (match
       Engine.of_matrix
         ~config:
           {
             Engine.default_config with
             Engine.fault = { Fault.default with Fault.loss = 2. };
           }
         m
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "measure"
    [
      ( "oracle",
        [
          Alcotest.test_case "matrix backed" `Quick test_oracle_matrix;
          Alcotest.test_case "function backed" `Quick test_oracle_fn;
        ] );
      ( "oracle-mode",
        [
          Alcotest.test_case "default engine = matrix" `Quick
            test_default_engine_is_oracle;
          Alcotest.test_case "vivaldi identical through engine" `Quick
            test_vivaldi_engine_path_identical;
          Alcotest.test_case "meridian identical through engine" `Quick
            test_meridian_engine_path_identical;
        ] );
      ( "cache",
        [
          Alcotest.test_case "ttl expiry accounting" `Quick test_cache_ttl_expiry;
          Alcotest.test_case "unit semantics" `Quick test_cache_unit;
          Alcotest.test_case "lru capacity eviction" `Quick
            test_cache_lru_eviction;
          Alcotest.test_case "find_code out-param path" `Quick
            test_cache_find_code;
        ] );
      ( "arbiter",
        [
          Alcotest.test_case "strict per-plane shares" `Quick
            test_arbiter_shares;
          Alcotest.test_case "config validation" `Quick
            test_arbiter_validation;
        ] );
      ( "budget",
        [
          Alcotest.test_case "exhaustion => caller fallback" `Quick
            test_budget_exhaustion_fallback;
          Alcotest.test_case "global bucket" `Quick test_budget_global_limit;
          Alcotest.test_case "starved vivaldi still runs" `Quick
            test_budget_vivaldi_fallback;
        ] );
      ( "faults",
        [
          Alcotest.test_case "seeded jitter determinism" `Quick
            test_jitter_determinism;
          Alcotest.test_case "jitter bounds" `Quick test_jitter_bounds_and_bias;
          Alcotest.test_case "loss-retry accounting" `Quick
            test_loss_retry_accounting;
          Alcotest.test_case "retries recover" `Quick test_retry_recovers;
          Alcotest.test_case "outages" `Quick test_outage;
          Alcotest.test_case "attempt_into = attempt draw for draw" `Quick
            test_fault_attempt_into_equivalence;
          Alcotest.test_case "attempt_into out-param reuse" `Quick
            test_fault_attempt_into_reuse;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "per-label counters" `Quick test_label_accounting;
          Alcotest.test_case "snapshot independence" `Quick
            test_stats_snapshot_independent;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "meridian under loss" `Quick
            test_meridian_query_under_loss_degrades_gracefully;
          Alcotest.test_case "loss inflates simulator time" `Quick
            test_online_loss_inflates_simulator_time;
          Alcotest.test_case "adaptive beats fixed retry" `Quick
            test_adaptive_beats_fixed_retry_cost;
        ] );
      ( "validation",
        [
          Alcotest.test_case "config messages" `Quick
            test_config_validation_messages;
        ] );
    ]
