(* Property-test harness for the measurement plane.

   Every test draws random configs and random matrices from a
   generator seeded by TIVAWARE_PROP_SEED (default 0), so the whole
   suite can be re-run under distinct seeds (the CI matrix runs three)
   while any failure stays exactly reproducible. *)

module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Euclidean = Tivaware_topology.Euclidean
module Budget = Tivaware_measure.Budget
module Cache = Tivaware_measure.Cache
module Fault = Tivaware_measure.Fault
module Profile = Tivaware_measure.Profile
module Churn = Tivaware_measure.Churn
module Dynamics = Tivaware_measure.Dynamics
module Engine = Tivaware_measure.Engine
module Probe_stats = Tivaware_measure.Probe_stats
module Sim = Tivaware_eventsim.Sim
module Ring = Tivaware_meridian.Ring
module Query = Tivaware_meridian.Query
module Overlay = Tivaware_meridian.Overlay
module Online = Tivaware_meridian.Online
module Selectors = Tivaware_core.Selectors
module System = Tivaware_vivaldi.System
module Severity = Tivaware_tiv.Severity
module Eval = Tivaware_tiv.Eval
module Chord = Tivaware_dht.Chord
module Id_space = Tivaware_dht.Id_space
module Multicast = Tivaware_overlay.Multicast

let prop_seed =
  match Sys.getenv_opt "TIVAWARE_PROP_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 0)
  | None -> 0

(* Per-test generator: independent of test execution order, offset by
   the test's own salt so tests do not share streams. *)
let rng salt = Rng.create ((prop_seed * 1_000_003) + salt)

let checki = Alcotest.(check int)
let checkb = Alcotest.(check bool)

let random_matrix ?(missing = 0.) rng ~n =
  let m = Euclidean.uniform_box rng ~n ~dim:3 ~side_ms:300. in
  if missing > 0. then
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        if Rng.bernoulli rng missing then Matrix.set m i j nan
      done
    done;
  m

let random_pair rng n =
  let i = Rng.int rng n in
  let j = (i + 1 + Rng.int rng (n - 1)) mod n in
  (i, j)

(* ------------------------------------------------------------------ *)
(* Cache invariants                                                    *)

(* Model-checked random op sequence: the cache never serves a value
   older than its TTL, and never serves a value other than the last
   stored one for the key. *)
let test_cache_never_stale () =
  let g = rng 1 in
  for _ = 1 to 50 do
    let ttl = Rng.uniform g 0.5 20. in
    let capacity = if Rng.bool g then Some (1 + Rng.int g 8) else None in
    let c = Cache.create ?capacity ~ttl () in
    let model = Hashtbl.create 16 in
    let now = ref 0. in
    for _ = 1 to 200 do
      now := !now +. Rng.uniform g 0. (ttl /. 2.);
      let i = Rng.int g 6 and j = Rng.int g 6 in
      if i <> j then begin
        let key = if i < j then (i, j) else (j, i) in
        if Rng.bool g then begin
          let v = Rng.uniform g 1. 500. in
          ignore (Cache.store c ~now:!now i j v);
          Hashtbl.replace model key (v, !now)
        end
        else begin
          match Cache.find c ~now:!now i j with
          | Cache.Hit v ->
            let mv, mt = Hashtbl.find model key in
            checkb "hit within ttl" true (!now -. mt <= ttl);
            Alcotest.(check (float 0.)) "hit serves last stored value" mv v
          | Cache.Stale -> (
            match Hashtbl.find_opt model key with
            | Some (_, mt) -> checkb "stale only past ttl" true (!now -. mt > ttl)
            | None -> Alcotest.fail "stale entry never stored")
          | Cache.Miss -> ()
        end
      end
    done
  done

let test_cache_capacity_never_exceeded () =
  let g = rng 2 in
  for _ = 1 to 50 do
    let capacity = 1 + Rng.int g 10 in
    let c = Cache.create ~capacity ~ttl:1e6 () in
    for _ = 1 to 300 do
      let i, j = random_pair g 12 in
      ignore (Cache.store c ~now:0. i j (Rng.uniform g 1. 100.));
      checkb "length <= capacity" true (Cache.length c <= capacity)
    done
  done

(* With an effectively infinite TTL the only way entries leave is LRU
   eviction, so inserts of non-resident keys = live entries + evictions
   (a key may cycle in and out any number of times). *)
let test_cache_eviction_counter_identity () =
  let g = rng 3 in
  for _ = 1 to 50 do
    let capacity = 1 + Rng.int g 6 in
    let c = Cache.create ~capacity ~ttl:1e6 () in
    let inserts = ref 0 in
    let reported = ref 0 in
    for _ = 1 to 200 do
      let i, j = random_pair g 10 in
      if Cache.find c ~now:0. i j = Cache.Miss then incr inserts;
      reported := !reported + Cache.store c ~now:0. i j 1.
    done;
    checki "inserts = length + evictions" !inserts
      (Cache.length c + Cache.evictions c);
    checki "store return values sum to evictions" (Cache.evictions c) !reported
  done

(* The key evicted by a capacity overflow is always the one whose last
   use (store or hit) is oldest. *)
let test_cache_evicts_lru_key () =
  let g = rng 4 in
  for _ = 1 to 50 do
    let capacity = 2 + Rng.int g 4 in
    let c = Cache.create ~capacity ~ttl:1e6 () in
    (* recency model: most recent first *)
    let order = ref [] in
    let use key = order := key :: List.filter (( <> ) key) !order in
    for _ = 1 to 150 do
      let i, j = random_pair g 10 in
      let key = (min i j, max i j) in
      if Rng.bool g then begin
        let resident = List.mem key !order in
        let evicted = Cache.store c ~now:0. i j 1. in
        use key;
        if (not resident) && List.length !order > capacity then begin
          checki "overflow evicts exactly one" 1 evicted;
          (* Drop the model's least recent key; it must now miss. *)
          let lru = List.nth !order (List.length !order - 1) in
          order := List.filter (( <> ) lru) !order;
          checkb "lru key misses after eviction" true
            (Cache.find c ~now:0. (fst lru) (snd lru) = Cache.Miss)
        end
        else checki "no eviction otherwise" 0 evicted
      end
      else begin
        match Cache.find c ~now:0. i j with
        | Cache.Hit _ -> use key
        | Cache.Stale | Cache.Miss -> ()
      end
    done
  done

(* ------------------------------------------------------------------ *)
(* Budget invariants                                                   *)

let test_budget_denied_consumes_nothing () =
  let g = rng 5 in
  for _ = 1 to 50 do
    let capacity = 1. +. float_of_int (Rng.int g 5) in
    let b =
      Budget.create (Budget.per_node ~capacity ~rate:(Rng.uniform g 0. 2.)) ~n:4
    in
    let now = ref 0. in
    for _ = 1 to 100 do
      now := !now +. Rng.uniform g 0. 0.5;
      let node = Rng.int g 4 in
      let before = Budget.tokens b ~now:!now node in
      let admitted = Budget.try_take b ~now:!now node in
      let after = Budget.tokens b ~now:!now node in
      if admitted then
        checkb "admitted takes one token" true (after <= before -. 1. +. 1e-9)
      else begin
        checkb "denied only when short" true (before < 1.);
        Alcotest.(check (float 1e-9)) "denied leaves tokens" before after
      end
    done
  done

(* Engine level: with a rate-0 bucket of capacity C a node can never
   issue more than C wire attempts; everything beyond is denied and
   consumes nothing (the global bucket stays untouched by denials). *)
let test_engine_budget_conservation () =
  let g = rng 6 in
  for _ = 1 to 25 do
    let n = 8 + Rng.int g 8 in
    let m = random_matrix g ~n in
    let cap = 1 + Rng.int g 5 in
    let config =
      {
        Engine.default_config with
        Engine.budget =
          Some (Budget.per_node ~capacity:(float_of_int cap) ~rate:0.);
        seed = Rng.int g 10_000;
      }
    in
    let e = Engine.of_matrix ~config m in
    let requests = (2 * cap) + Rng.int g 20 in
    for _ = 1 to requests do
      ignore (Engine.rtt e 0 (1 + Rng.int g (n - 1)))
    done;
    let st = Engine.stats e in
    checki "issues bounded by capacity" cap st.Probe_stats.issued;
    checki "excess denied" (requests - cap) st.Probe_stats.denied
  done

(* ------------------------------------------------------------------ *)
(* Engine accounting identities                                        *)

(* Under a random fault config (no budget), every issued attempt is
   delivered, lost or unmeasured — and outcome counts tie exactly to
   the request counts observed by the caller. *)
let test_engine_attempt_accounting () =
  let g = rng 7 in
  for _ = 1 to 25 do
    let n = 10 + Rng.int g 10 in
    let m = random_matrix ~missing:(Rng.uniform g 0. 0.3) g ~n in
    let retries = Rng.int g 4 in
    let policy =
      match Rng.int g 3 with
      | 0 -> Fault.Fixed
      | 1 -> Fault.Backoff Fault.default_backoff
      | _ -> Fault.adaptive ~target_failure:0.05 ()
    in
    let fault =
      { Fault.default with Fault.loss = Rng.uniform g 0. 0.5; retries; policy }
    in
    let config =
      { Engine.default_config with Engine.fault; seed = Rng.int g 10_000 }
    in
    let e = Engine.of_matrix ~config m in
    let delivered = ref 0 and failed = ref 0 and unmeasured = ref 0 in
    let requests = 200 in
    for _ = 1 to requests do
      let i, j = random_pair g n in
      match Engine.probe e i j with
      | Engine.Rtt _ -> incr delivered
      | Engine.Lost -> incr failed
      | Engine.Unmeasured -> incr unmeasured
      | Engine.Cached _ | Engine.Denied | Engine.Down -> ()
    done;
    let st = Engine.stats e in
    checki "requests counted" requests st.Probe_stats.requests;
    checki "issued = delivered + lost + unmeasured"
      st.Probe_stats.issued
      (!delivered + st.Probe_stats.lost + st.Probe_stats.unmeasured);
    checki "failed outcomes" !failed st.Probe_stats.failed;
    checki "unmeasured outcomes" !unmeasured st.Probe_stats.unmeasured;
    checkb "attempts bounded by retry cap" true
      (st.Probe_stats.issued <= requests * (retries + 1));
    checki "retried = issued - first attempts" st.Probe_stats.retried
      (st.Probe_stats.issued - (!delivered + !failed + !unmeasured))
  done

(* With a cache every request resolves to exactly one of hit, miss or
   stale. *)
let test_engine_cache_accounting () =
  let g = rng 8 in
  for _ = 1 to 25 do
    let n = 8 + Rng.int g 8 in
    let m = random_matrix g ~n in
    let ttl = Rng.uniform g 1. 30. in
    let config =
      {
        Engine.default_config with
        Engine.cache_ttl = Some ttl;
        cache_capacity = (if Rng.bool g then Some (1 + Rng.int g 20) else None);
        seed = Rng.int g 10_000;
      }
    in
    let e = Engine.of_matrix ~config m in
    let requests = 300 in
    for _ = 1 to requests do
      if Rng.bernoulli g 0.2 then Engine.advance e (Rng.uniform g 0. ttl);
      let i, j = random_pair g n in
      ignore (Engine.rtt e i j)
    done;
    let st = Engine.stats e in
    checki "hits + misses + stale = requests" requests
      (st.Probe_stats.hits + st.Probe_stats.misses + st.Probe_stats.stale);
    checki "every non-hit issued once" st.Probe_stats.issued
      (st.Probe_stats.misses + st.Probe_stats.stale)
  done

(* When probes cannot fail, the adaptive policy must collapse to one
   attempt per uncached request. *)
let test_engine_no_loss_single_attempt () =
  let g = rng 9 in
  for _ = 1 to 25 do
    let n = 8 + Rng.int g 8 in
    let m = random_matrix g ~n in
    let policy =
      if Rng.bool g then Fault.adaptive ()
      else Fault.Backoff Fault.default_backoff
    in
    let fault = { Fault.default with Fault.retries = 1 + Rng.int g 4; policy } in
    let config =
      { Engine.default_config with Engine.fault; seed = Rng.int g 10_000 }
    in
    let e = Engine.of_matrix ~config m in
    let requests = 100 in
    for _ = 1 to requests do
      let i, j = random_pair g n in
      ignore (Engine.rtt e i j)
    done;
    let st = Engine.stats e in
    checki "one attempt per request" requests st.Probe_stats.issued;
    checki "no retries without loss" 0 st.Probe_stats.retried
  done

(* ------------------------------------------------------------------ *)
(* Oracle-mode equivalence                                              *)

let test_default_engine_equals_oracle () =
  let g = rng 10 in
  for _ = 1 to 10 do
    let n = 10 + Rng.int g 30 in
    let m = random_matrix ~missing:(Rng.uniform g 0. 0.4) g ~n in
    let e = Engine.of_matrix m in
    for _ = 1 to 100 do
      let i = Rng.int g n and j = Rng.int g n in
      let truth = Matrix.get m i j and probed = Engine.rtt e i j in
      if Float.is_nan truth then checkb "missing stays nan" true (Float.is_nan probed)
      else Alcotest.(check (float 0.)) "rtt bit-identical" truth probed
    done;
    checkb "clock untouched" true (Engine.now e = 0.);
    checki "no probe_ms magic" 0
      (int_of_float (Engine.stats e).Probe_stats.probe_ms
      - int_of_float (Engine.stats e).Probe_stats.probe_ms)
  done

(* The online (event-sim) query under a default engine reproduces the
   pure-matrix online query: same answer, same probes, same virtual
   latency. *)
let test_online_engine_equals_matrix () =
  let g = rng 11 in
  for _ = 1 to 10 do
    let n = 30 + Rng.int g 30 in
    let m = random_matrix g ~n in
    let nodes = Rng.sample_indices g ~n ~k:(n / 2) in
    let overlay =
      Overlay.build (Rng.create (Rng.int g 10_000)) m Ring.default_config
        ~meridian_nodes:nodes
    in
    let is_meridian i = Overlay.is_meridian overlay i in
    let target = ref (Rng.int g n) in
    while is_meridian !target do
      target := Rng.int g n
    done;
    let client = Rng.int g n and start = nodes.(0) in
    let a =
      Online.closest (Sim.create ()) overlay m ~client ~start ~target:!target
    in
    let sim = Sim.create () in
    let e = Engine.of_matrix m in
    Online.attach sim e;
    let b =
      Online.closest_engine sim overlay e ~client ~start ~target:!target
    in
    checki "same chosen" a.Online.query.Query.chosen b.Online.query.Query.chosen;
    checki "same probes" a.Online.query.Query.probes b.Online.query.Query.probes;
    checki "same hops" a.Online.query.Query.hops b.Online.query.Query.hops;
    Alcotest.(check (float 1e-9))
      "same virtual latency" a.Online.latency b.Online.latency
  done

(* ------------------------------------------------------------------ *)
(* Time accounting                                                      *)

(* charge_time: the engine clock is exactly the charged probe time (in
   seconds), and it never goes backwards. *)
let test_clock_tracks_probe_cost () =
  let g = rng 12 in
  for _ = 1 to 25 do
    let n = 8 + Rng.int g 8 in
    let m = random_matrix ~missing:0.1 g ~n in
    let fault =
      {
        Fault.default with
        Fault.loss = Rng.uniform g 0. 0.4;
        jitter = Rng.uniform g 0. 0.3;
        retries = Rng.int g 3;
        policy = Fault.Backoff Fault.default_backoff;
      }
    in
    let config =
      {
        Engine.default_config with
        Engine.fault;
        charge_time = true;
        seed = Rng.int g 10_000;
      }
    in
    let e = Engine.of_matrix ~config m in
    let last = ref 0. in
    for _ = 1 to 100 do
      let i, j = random_pair g n in
      let { Engine.cost; _ } = Engine.probe_timed e i j in
      checkb "cost non-negative" true (cost >= 0.);
      checkb "clock monotone" true (Engine.now e >= !last);
      last := Engine.now e
    done;
    Alcotest.(check (float 1e-6))
      "clock = charged probe time"
      ((Engine.stats e).Probe_stats.probe_ms /. 1000.)
      (Engine.now e)
  done

(* Delivered samples stay inside the multiplicative jitter band. *)
let test_jitter_band () =
  let g = rng 13 in
  for _ = 1 to 25 do
    let n = 8 + Rng.int g 8 in
    let m = random_matrix g ~n in
    let jitter = Rng.uniform g 0.01 0.5 in
    let config =
      {
        Engine.default_config with
        Engine.fault = { Fault.default with Fault.jitter };
        seed = Rng.int g 10_000;
      }
    in
    let e = Engine.of_matrix ~config m in
    for _ = 1 to 100 do
      let i, j = random_pair g n in
      let truth = Matrix.get m i j in
      match Engine.probe e i j with
      | Engine.Rtt sample ->
        checkb "sample within band" true
          (sample >= truth *. (1. -. jitter) -. 1e-9
          && sample <= truth *. (1. +. jitter) +. 1e-9)
      | _ -> Alcotest.fail "no faults: probe must deliver"
    done
  done

(* Backoff delays grow geometrically and respect the delay-jitter
   band. *)
let test_backoff_delay_schedule () =
  let g = rng 14 in
  for _ = 1 to 50 do
    let base = Rng.uniform g 1. 200. in
    let factor = Rng.uniform g 1. 4. in
    let delay_jitter = if Rng.bool g then 0. else Rng.uniform g 0.01 0.5 in
    let b = { Fault.base; factor; delay_jitter } in
    let config = { Fault.default with Fault.policy = Fault.Backoff b } in
    let f = Fault.create ~config (Rng.create (Rng.int g 10_000)) ~n:4 in
    for attempt = 1 to 6 do
      let expected = base *. (factor ** float_of_int (attempt - 1)) in
      let d = Fault.backoff_delay f ~attempt in
      if delay_jitter = 0. then
        Alcotest.(check (float 1e-9)) "exact geometric delay" expected d
      else
        checkb "jittered delay within band" true
          (d >= expected *. (1. -. delay_jitter) -. 1e-9
          && d <= expected *. (1. +. delay_jitter) +. 1e-9)
    done;
    checkb "no delay before first attempt" true
      (Fault.backoff_delay f ~attempt:0 = 0.)
  done

(* Adaptive retry budgets shrink with the loss estimate and never
   exceed the configured cap. *)
let test_adaptive_retry_budget_bounds () =
  let g = rng 15 in
  for _ = 1 to 50 do
    let retries = 1 + Rng.int g 5 in
    let target_failure = Rng.uniform g 0.001 0.2 in
    let config =
      {
        Fault.default with
        Fault.retries;
        policy = Fault.adaptive ~target_failure ();
      }
    in
    let f = Fault.create ~config (Rng.create 1) ~n:3 in
    checki "fresh link needs no retries" 0 (Fault.retry_budget f 0 1);
    (* Drive the link's loss estimate up with observed losses. *)
    let prev = ref 0 in
    for _ = 1 to 60 do
      Fault.record_outcome f 0 1 ~lost:true;
      let b = Fault.retry_budget f 0 1 in
      checkb "budget within cap" true (b >= 0 && b <= retries);
      checkb "budget non-decreasing as loss grows" true (b >= !prev);
      prev := b
    done;
    checkb "high loss earns retries" true (!prev >= 1);
    (* A cold sibling link inherits the prober's aggregate experience;
       a different prober's links are untouched. *)
    checkb "cold sibling inherits prober estimate" true
      (Fault.retry_budget f 0 2 >= 1);
    checki "other prober unaffected" 0 (Fault.retry_budget f 1 0);
    (* And back down with successes. *)
    for _ = 1 to 200 do
      Fault.record_outcome f 0 1 ~lost:false
    done;
    checki "recovered link needs none again" 0 (Fault.retry_budget f 0 1)
  done

(* ------------------------------------------------------------------ *)
(* Per-link profiles                                                    *)

let zero_profile = Profile.uniform ~name:"zero" Profile.clean

(* An all-zero per-link profile is the oracle, on every protocol layer:
   the profile machinery must add no RNG draws, no costs and no state,
   so each protocol's run is structurally identical with and without
   it. *)
let test_zero_fault_profile_equals_oracle_protocols () =
  let g = rng 17 in
  let n = 40 in
  let m = random_matrix g ~n in
  let mk profile =
    Engine.of_matrix
      ~config:{ Engine.default_config with Engine.profile; seed = Rng.int g 10_000 }
      m
  in
  (* Vivaldi: bit-identical final coordinates. *)
  let coords profile =
    let sys =
      Selectors.embed_vivaldi_engine ~rounds:40 (Rng.create 21) (mk profile)
    in
    Array.init n (fun i -> (System.coord sys i, System.error_estimate sys i))
  in
  checkb "vivaldi coordinates bit-identical" true
    (coords None = coords (Some zero_profile));
  (* Meridian: identical query traces (chosen, delay, probes, hops,
     path). *)
  let nodes = Rng.sample_indices (Rng.create 23) ~n ~k:15 in
  let overlay =
    Selectors.meridian_build m (Ring.unlimited_config n) (Rng.create 25) nodes
  in
  let meridian_trace profile =
    let e = mk profile in
    let pick = Rng.create 27 in
    List.init 25 (fun _ ->
        let start = nodes.(Rng.int pick (Array.length nodes)) in
        let target = Rng.int pick n in
        if Array.mem target nodes then None
        else Some (Query.closest_engine overlay e ~start ~target))
  in
  checkb "meridian traces identical" true
    (meridian_trace None = meridian_trace (Some zero_profile));
  (* TIV alert: identical accuracy/recall sweep. *)
  let system = Selectors.embed_vivaldi (Rng.create 29) m in
  let severity = Severity.all m in
  let alert_points profile =
    Eval.evaluate_engine ~engine:(mk profile)
      ~predicted:(fun i j -> System.predicted system i j)
      ~severity ~worst_fraction:0.1 ~thresholds:Eval.default_thresholds
  in
  checkb "alert sweep identical" true
    (alert_points None = alert_points (Some zero_profile));
  (* Chord PNS: identical fingers, hence identical lookups. *)
  let dht_digest profile =
    let overlay = Chord.build_engine ~candidates:6 (mk profile) in
    let r = Rng.create 31 in
    List.init 40 (fun _ ->
        let l =
          Chord.lookup overlay m ~source:(Rng.int r n)
            ~key:(Rng.int r Id_space.modulus)
        in
        (l.Chord.hops, l.Chord.latency))
  in
  checkb "dht lookups identical" true
    (dht_digest None = dht_digest (Some zero_profile));
  (* Overlay multicast: identical tree metrics and refresh switches. *)
  let multicast_digest profile =
    let e = mk profile in
    let join_order = Rng.permutation (Rng.create 33) n in
    let t = Multicast.build_engine ~config:Multicast.default_config e ~join_order in
    let switches = Multicast.refresh_engine t (Rng.create 35) e in
    (Multicast.evaluate t m, switches)
  in
  checkb "multicast tree identical" true
    (multicast_digest None = multicast_digest (Some zero_profile))

(* A uniform profile built from the global rates reproduces the
   historical global fault model probe for probe: same outcomes, same
   costs, same counters, same clock — under the same seed, for any
   config. *)
let test_uniform_profile_matches_global_model () =
  let g = rng 18 in
  for _ = 1 to 15 do
    let n = 10 + Rng.int g 10 in
    let m = random_matrix ~missing:(Rng.uniform g 0. 0.2) g ~n in
    let loss = Rng.uniform g 0. 0.5 in
    let jitter = Rng.uniform g 0. 0.4 in
    let outage = Rng.uniform g 0. 0.2 in
    let retries = Rng.int g 3 in
    let policy =
      match Rng.int g 3 with
      | 0 -> Fault.Fixed
      | 1 -> Fault.Backoff { Fault.default_backoff with Fault.delay_jitter = 0.1 }
      | _ -> Fault.adaptive ~target_failure:0.05 ()
    in
    let fault =
      { Fault.default with Fault.loss; jitter; outage; retries; policy }
    in
    let seed = Rng.int g 100_000 in
    let mk profile =
      Engine.of_matrix
        ~config:
          {
            Engine.default_config with
            Engine.fault;
            profile;
            charge_time = true;
            seed;
          }
        m
    in
    let a = mk None and b = mk (Some (Profile.of_rates ~loss ~jitter)) in
    let wl_seed = Rng.int g 100_000 in
    let replay e =
      let wl = Rng.create wl_seed in
      List.init 300 (fun _ ->
          let i, j = random_pair wl n in
          Engine.probe_timed e i j)
    in
    let ta = replay a and tb = replay b in
    List.iter2
      (fun (x : Engine.timed) (y : Engine.timed) ->
        checkb "outcome identical" true (x.Engine.outcome = y.Engine.outcome);
        Alcotest.(check (float 0.)) "cost identical" x.Engine.cost y.Engine.cost)
      ta tb;
    let sa = Engine.stats a and sb = Engine.stats b in
    checki "issued identical" sa.Probe_stats.issued sb.Probe_stats.issued;
    checki "lost identical" sa.Probe_stats.lost sb.Probe_stats.lost;
    checki "retried identical" sa.Probe_stats.retried sb.Probe_stats.retried;
    checki "down identical" sa.Probe_stats.down sb.Probe_stats.down;
    Alcotest.(check (float 0.))
      "probe_ms identical" sa.Probe_stats.probe_ms sb.Probe_stats.probe_ms;
    Alcotest.(check (float 0.)) "clock identical" (Engine.now a) (Engine.now b)
  done

(* The per-link loss estimator converges to each link's configured rate
   (time-averaged over the EWMA's stationary noise), and keeps links of
   the same prober apart. *)
let test_per_link_estimate_converges () =
  let g = rng 19 in
  for _ = 1 to 10 do
    let f = Fault.create (Rng.create (Rng.int g 10_000)) ~n:6 in
    List.iter
      (fun (i, j) ->
        let rate = Rng.uniform g 0.05 0.9 in
        let sum = ref 0. and count = ref 0 in
        for k = 1 to 3000 do
          Fault.record_outcome f i j ~lost:(Rng.bernoulli g rate);
          if k > 500 then begin
            sum := !sum +. Fault.estimated_loss f i j;
            incr count
          end
        done;
        let avg = !sum /. float_of_int !count in
        checkb
          (Printf.sprintf "estimate tracks configured rate (%.3f vs %.3f)" avg
             rate)
          true
          (abs_float (avg -. rate) < 0.08))
      [ (0, 1); (0, 2); (3, 4) ]
  done;
  (* Discrimination: a prober with one lossy and one clean link keeps
     their estimates apart even though both feed its node aggregate. *)
  let f = Fault.create (Rng.create 1) ~n:4 in
  for _ = 1 to 500 do
    Fault.record_outcome f 0 1 ~lost:true;
    Fault.record_outcome f 0 2 ~lost:false
  done;
  checkb "lossy link estimated high" true (Fault.estimated_loss f 0 1 > 0.9);
  checkb "clean sibling estimated low" true (Fault.estimated_loss f 0 2 < 0.1)

(* Per-link profile validation rejects out-of-range entries and names
   the offending link in the message, field by field. *)
let test_profile_validation_names_link () =
  let g = rng 20 in
  let m = random_matrix g ~n:6 in
  let contains s sub =
    let ls = String.length s and lb = String.length sub in
    let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
    go 0
  in
  let expect_bad ~field bad_link =
    (* Only link 2->3 is malformed; the message must say so. *)
    let profile =
      Profile.make "bad" (fun i j ->
          if i = 2 && j = 3 then bad_link else Profile.clean)
    in
    let config = { Engine.default_config with Engine.profile = Some profile } in
    match Engine.of_matrix ~config m with
    | _ -> Alcotest.failf "bad %s accepted" field
    | exception Invalid_argument msg ->
      checkb (Printf.sprintf "%s error names the link (%s)" field msg) true
        (contains msg "2->3");
      checkb (Printf.sprintf "%s error names the field (%s)" field msg) true
        (contains msg field)
  in
  expect_bad ~field:"loss" { Profile.clean with Profile.loss = 1.5 };
  expect_bad ~field:"loss" { Profile.clean with Profile.loss = -0.1 };
  expect_bad ~field:"loss" { Profile.clean with Profile.loss = Float.nan };
  expect_bad ~field:"jitter" { Profile.clean with Profile.jitter = 1. };
  expect_bad ~field:"jitter" { Profile.clean with Profile.jitter = Float.nan };
  expect_bad ~field:"outage" { Profile.clean with Profile.outage = 2. };
  expect_bad ~field:"outage" { Profile.clean with Profile.outage = -1. };
  expect_bad ~field:"extra_delay" { Profile.clean with Profile.extra_delay = -5. };
  expect_bad ~field:"extra_delay"
    { Profile.clean with Profile.extra_delay = Float.nan };
  (* Exact message shape, pinned once. *)
  Alcotest.check_raises "exact message"
    (Invalid_argument "ctx: link 2->3: loss must be in [0, 1] (got 1.5)")
    (fun () ->
      Profile.validate_link "ctx" ~id:"2->3"
        { Profile.clean with Profile.loss = 1.5 });
  (* The stock constructors always validate, whatever the bases. *)
  for _ = 1 to 20 do
    let loss = Rng.uniform g 0. 0.99 and jitter = Rng.uniform g 0. 0.99 in
    let cluster_of = Array.init 6 (fun i -> if i mod 3 = 0 then -1 else i mod 2) in
    Profile.validate "test" ~n:6 (Profile.topology ~loss ~jitter ~cluster_of ());
    Profile.validate "test" ~n:6
      (Profile.random ~loss ~jitter ~outage:(Rng.uniform g 0. 1.) ~seed:(Rng.int g 1000) ())
  done

(* ------------------------------------------------------------------ *)
(* Config validation                                                    *)

let raises_invalid f =
  match f () with
  | _ -> false
  | exception Invalid_argument _ -> true

let test_config_validation () =
  let g = rng 16 in
  let m = random_matrix g ~n:6 in
  let mk config = ignore (Engine.of_matrix ~config m) in
  let base = Engine.default_config in
  List.iter
    (fun (name, config) ->
      checkb name true (raises_invalid (fun () -> mk config)))
    [
      ( "negative cache_ttl",
        { base with Engine.cache_ttl = Some (-. Rng.uniform g 0.1 10.) } );
      ("zero cache_ttl", { base with Engine.cache_ttl = Some 0. });
      ("nan cache_ttl", { base with Engine.cache_ttl = Some nan });
      ( "zero cache capacity",
        { base with Engine.cache_ttl = Some 1.; cache_capacity = Some 0 } );
      ( "capacity without ttl",
        { base with Engine.cache_capacity = Some 4 } );
      ( "zero-capacity budget",
        { base with Engine.budget = Some (Budget.per_node ~capacity:0. ~rate:1.) } );
      ( "negative budget rate",
        { base with Engine.budget = Some (Budget.per_node ~capacity:5. ~rate:(-1.)) } );
      ( "loss out of range",
        { base with Engine.fault = { Fault.default with Fault.loss = 1.5 } } );
      ( "negative retries",
        { base with Engine.fault = { Fault.default with Fault.retries = -1 } } );
      ( "negative timeout",
        { base with Engine.fault = { Fault.default with Fault.timeout = -5. } } );
      ( "backoff factor below one",
        {
          base with
          Engine.fault =
            {
              Fault.default with
              Fault.policy =
                Fault.Backoff { Fault.default_backoff with Fault.factor = 0.5 };
            };
        } );
      ( "target_failure out of range",
        {
          base with
          Engine.fault =
            { Fault.default with Fault.policy = Fault.adaptive ~target_failure:1.5 () };
        } );
    ];
  (* And a valid non-trivial config constructs fine. *)
  mk
    {
      Engine.fault =
        {
          Fault.default with
          Fault.loss = 0.1;
          retries = 2;
          policy = Fault.adaptive ();
        };
      profile = Some (Profile.random ~loss:0.1 ~jitter:0.2 ~seed:5 ());
      churn = Some { Churn.default with Churn.fraction = 0.3 };
      dynamics =
        Some
          {
            Dynamics.diurnal = Some Dynamics.default_diurnal;
            route_flap = Some Dynamics.default_route_flap;
            seed = 4;
          };
      budget = Some (Budget.per_node ~capacity:10. ~rate:1.);
      cache_ttl = Some 5.;
      cache_capacity = Some 64;
      charge_time = true;
      seed = 3;
    }

(* ------------------------------------------------------------------ *)
(* Dynamics and repair: off means bit-for-bit off                      *)

(* A dynamics layer whose knobs are all at zero is not "almost" the
   static profile — it must replay it probe for probe: same outcomes,
   same costs, same accounting, under any clock movement. *)
let test_zero_dynamics_replays_static () =
  let g = rng 17 in
  for _ = 1 to 10 do
    let n = 6 + Rng.int g 6 in
    let m = random_matrix g ~n in
    let seed = Rng.int g 10_000 in
    let profile =
      Profile.random ~loss:(Rng.uniform g 0. 0.3) ~jitter:(Rng.uniform g 0. 0.3)
        ~seed:(Rng.int g 1000) ()
    in
    let config dynamics =
      {
        Engine.default_config with
        Engine.fault = { Fault.default with Fault.loss = 0.1; retries = 1 };
        profile = Some profile;
        dynamics;
        charge_time = true;
        seed;
      }
    in
    let inert =
      {
        Dynamics.diurnal =
          Some
            {
              Dynamics.default_diurnal with
              Dynamics.loss_amplitude = 0.;
              jitter_amplitude = 0.;
            };
        route_flap = Some { Dynamics.rate = 0.; max_extra = 40. };
        seed = Rng.int g 1000;
      }
    in
    let a = Engine.of_matrix ~config:(config None) m in
    let b = Engine.of_matrix ~config:(config (Some inert)) m in
    let wl = Rng.create (seed + 1) in
    for _ = 1 to 300 do
      let i, j = random_pair wl n in
      let ta = Engine.probe_timed a i j and tb = Engine.probe_timed b i j in
      checkb "same outcome" true (ta.Engine.outcome = tb.Engine.outcome);
      Alcotest.(check (float 0.)) "same cost" ta.Engine.cost tb.Engine.cost
    done;
    Alcotest.(check (float 0.)) "same clock" (Engine.now a) (Engine.now b);
    checki "same attempts issued" (Engine.stats a).Probe_stats.issued
      (Engine.stats b).Probe_stats.issued
  done

(* Route-change schedules are a pure function of (config, T): the link
   state after one jump to T equals the state after any staircase of
   advances, however the links were queried along the way. *)
let test_route_flap_path_independent () =
  let g = rng 18 in
  for _ = 1 to 10 do
    let n = 5 + Rng.int g 5 in
    let base = Profile.of_rates ~loss:0.05 ~jitter:0.1 in
    let config =
      {
        Dynamics.diurnal = None;
        route_flap =
          Some
            {
              Dynamics.rate = Rng.uniform g 0.01 0.2;
              max_extra = Rng.uniform g 5. 80.;
            };
        seed = Rng.int g 1000;
      }
    in
    let horizon = Rng.uniform g 50. 400. in
    let jump = Dynamics.create ~config base in
    let steps = Dynamics.create ~config base in
    Dynamics.advance_to jump horizon;
    let t = ref 0. in
    while !t < horizon do
      t := !t +. Rng.uniform g 0.5 20.;
      Dynamics.advance_to steps (Float.min !t horizon);
      (* Interleave queries: lazy materialization must not bend the
         schedule. *)
      let i, j = random_pair g n in
      ignore (Dynamics.link steps i j)
    done;
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then begin
          let a = Dynamics.link jump i j and b = Dynamics.link steps i j in
          Alcotest.(check (float 0.))
            (Printf.sprintf "extra_delay %d->%d" i j)
            a.Profile.extra_delay b.Profile.extra_delay;
          Alcotest.(check (float 0.))
            (Printf.sprintf "loss %d->%d" i j)
            a.Profile.loss b.Profile.loss
        end
      done
    done;
    (* Both have now materialized every stream up to the horizon. *)
    checki "same route-change count" (Dynamics.route_changes jump)
      (Dynamics.route_changes steps)
  done

(* Building the repair machinery without churn must change nothing:
   maintenance passes find nothing to do, and protocol answers are
   identical to a freshly built structure. *)
let test_repair_inert_without_churn () =
  let g = rng 19 in
  let n = 24 in
  let m = random_matrix g ~n in
  (* Chord: healing on a churn-free engine marks nobody and reroutes
     nothing; lookups keep terminating at the structural owner. *)
  let e = Engine.of_matrix m in
  let t = Chord.build_engine ~successor_list:6 e in
  let h = Chord.heal_engine t e in
  checkb "heal probed" true (h.Chord.checked > 0);
  checki "nobody marked dead" 0 h.Chord.marked_dead;
  checki "nobody rerouted" 0 h.Chord.rerouted;
  for _ = 1 to 100 do
    let key = Id_space.add (Id_space.of_node (Rng.int g n)) (Rng.int g 1_000_000) in
    checki "live owner = structural owner" (Chord.owner_of t key)
      (Chord.live_owner_of t key);
    let o = Chord.lookup t m ~source:(Rng.int g n) ~key in
    checki "lookup lands on the structural owner" (Chord.owner_of t key)
      o.Chord.owner
  done;
  (* Meridian: ring maintenance on a churn-free engine evicts nothing
     and gossips nothing. *)
  let nodes = Rng.sample_indices g ~n ~k:10 in
  let overlay =
    Overlay.build g m (Ring.unlimited_config n) ~meridian_nodes:nodes
  in
  let before = Array.map (Overlay.ring_population overlay) nodes in
  let r = Overlay.repair_engine overlay e in
  checki "no evictions" 0 r.Overlay.evicted;
  checki "no re-entries" 0 r.Overlay.reentered;
  checki "nothing pending" 0 (Overlay.pending_reentries overlay);
  Array.iteri
    (fun idx node ->
      Alcotest.(check (array int))
        (Printf.sprintf "rings of %d unchanged" node)
        before.(idx)
        (Overlay.ring_population overlay node))
    nodes;
  (* Multicast: repair detaches and rejoins nobody, and the parent
     relation is untouched. *)
  let join_order = Array.init n Fun.id in
  Rng.shuffle g join_order;
  let tree = Multicast.build_engine e ~join_order in
  let parents = Array.init n (Multicast.parent tree) in
  let mr = Multicast.repair_engine tree g e in
  checki "nothing detached" 0 mr.Multicast.detached;
  checki "nothing rejoined" 0 mr.Multicast.rejoined;
  for i = 0 to n - 1 do
    checkb "parent unchanged" true (parents.(i) = Multicast.parent tree i)
  done;
  (* Vivaldi: neighbor repair on a churn-free engine evicts nothing and
     keeps every neighbor set intact. *)
  let module Dynamic_neighbors = Tivaware_vivaldi.Dynamic_neighbors in
  let sys = System.create_with_engine g e in
  let neighbors = Array.init n (System.neighbors sys) in
  let vr = Dynamic_neighbors.repair_neighbors sys in
  checki "no neighbor evictions" 0 vr.Dynamic_neighbors.evicted;
  checki "no resampling" 0 vr.Dynamic_neighbors.resampled;
  for i = 0 to n - 1 do
    Alcotest.(check (array int))
      (Printf.sprintf "neighbors of %d unchanged" i)
      neighbors.(i) (System.neighbors sys i)
  done

let () =
  Alcotest.run "measure-properties"
    [
      ( "cache",
        [
          Alcotest.test_case "never serves past ttl" `Quick test_cache_never_stale;
          Alcotest.test_case "capacity never exceeded" `Quick
            test_cache_capacity_never_exceeded;
          Alcotest.test_case "eviction counter identity" `Quick
            test_cache_eviction_counter_identity;
          Alcotest.test_case "evicts the lru key" `Quick test_cache_evicts_lru_key;
        ] );
      ( "budget",
        [
          Alcotest.test_case "denied consumes nothing" `Quick
            test_budget_denied_consumes_nothing;
          Alcotest.test_case "engine-level conservation" `Quick
            test_engine_budget_conservation;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "attempt identities" `Quick
            test_engine_attempt_accounting;
          Alcotest.test_case "cache identities" `Quick test_engine_cache_accounting;
          Alcotest.test_case "no loss, one attempt" `Quick
            test_engine_no_loss_single_attempt;
        ] );
      ( "oracle-mode",
        [
          Alcotest.test_case "default engine = matrix" `Quick
            test_default_engine_equals_oracle;
          Alcotest.test_case "online engine = online matrix" `Quick
            test_online_engine_equals_matrix;
        ] );
      ( "time",
        [
          Alcotest.test_case "clock tracks probe cost" `Quick
            test_clock_tracks_probe_cost;
          Alcotest.test_case "jitter band" `Quick test_jitter_band;
          Alcotest.test_case "backoff schedule" `Quick test_backoff_delay_schedule;
          Alcotest.test_case "adaptive budget bounds" `Quick
            test_adaptive_retry_budget_bounds;
        ] );
      ( "profiles",
        [
          Alcotest.test_case "zero-fault profile = oracle on all protocols"
            `Quick test_zero_fault_profile_equals_oracle_protocols;
          Alcotest.test_case "uniform profile = global model" `Quick
            test_uniform_profile_matches_global_model;
          Alcotest.test_case "per-link estimator converges" `Quick
            test_per_link_estimate_converges;
          Alcotest.test_case "profile validation names the link" `Quick
            test_profile_validation_names_link;
        ] );
      ( "validation",
        [ Alcotest.test_case "config validation" `Quick test_config_validation ] );
      ( "dynamics",
        [
          Alcotest.test_case "zero dynamics replays static profile" `Quick
            test_zero_dynamics_replays_static;
          Alcotest.test_case "route flap path independent" `Quick
            test_route_flap_path_independent;
          Alcotest.test_case "repair inert without churn" `Quick
            test_repair_inert_without_churn;
        ] );
    ]
