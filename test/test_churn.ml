(* Node churn: schedules, engine integration, and protocol liveness.

   The churn model's contract is that up/down state at time T is a pure
   function of (seed, node, T) — however the clock got there — and that
   a node inside its down window never answers a probe, while the
   protocols above degrade (count failures) instead of hanging. *)

module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Ring = Tivaware_meridian.Ring
module Query = Tivaware_meridian.Query
module Overlay = Tivaware_meridian.Overlay
module Online = Tivaware_meridian.Online
module Sim = Tivaware_eventsim.Sim
module Selectors = Tivaware_core.Selectors
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Churn = Tivaware_measure.Churn
module Probe_stats = Tivaware_measure.Probe_stats

let n = 60

let matrix =
  lazy (Datasets.generate ~size:n ~seed:2007 Datasets.Ds2).Generator.matrix

let engine ?(churn = Churn.default) ?dynamics ?(charge_time = false) ~seed () =
  Engine.of_matrix
    ~config:
      {
        Engine.fault = Fault.default;
        profile = None;
        churn = Some churn;
        dynamics;
        budget = None;
        cache_ttl = None;
        cache_capacity = None;
        charge_time;
        seed;
      }
    (Lazy.force matrix)

(* ------------------------------------------------------------------ *)
(* Schedule determinism                                                *)

let test_schedule_path_independent () =
  (* One jump to T and many small steps to T give identical states. *)
  let config = { Churn.default with Churn.fraction = 0.5; seed = 5 } in
  let jump = Churn.create ~config ~n () in
  let steps = Churn.create ~config ~n () in
  Churn.advance_to jump 300.;
  let t = ref 0. in
  while !t < 300. do
    t := !t +. 0.7;
    Churn.advance_to steps (Float.min !t 300.)
  done;
  Alcotest.(check int)
    "same transition count" (Churn.transitions jump)
    (Churn.transitions steps);
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "node %d state agrees" i)
      (Churn.is_up jump i) (Churn.is_up steps i)
  done

let test_churning_subset () =
  let config = { Churn.default with Churn.fraction = 0.4; seed = 9 } in
  let c = Churn.create ~config ~n () in
  let churning = ref 0 in
  for i = 0 to n - 1 do
    if Churn.churning c i then incr churning
    else begin
      (* Non-churning nodes never leave the up state. *)
      Churn.advance_to c 1000.;
      Alcotest.(check bool)
        (Printf.sprintf "stable node %d stays up" i)
        true (Churn.is_up c i)
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "churning count near fraction (%d/%d)" !churning n)
    true
    (!churning > n / 10 && !churning < (7 * n) / 10);
  (* All nodes start up. *)
  let fresh = Churn.create ~config ~n () in
  for i = 0 to n - 1 do
    Alcotest.(check bool) "starts up" true (Churn.is_up fresh i)
  done

let test_validate_config () =
  let expect msg config =
    Alcotest.check_raises msg (Invalid_argument msg) (fun () ->
        ignore (Churn.create ~config ~n ()))
  in
  expect "Churn.create: churn fraction must be in [0, 1] (got 1.5)"
    { Churn.default with Churn.fraction = 1.5 };
  expect "Churn.create: churn fraction must be in [0, 1] (got nan)"
    { Churn.default with Churn.fraction = Float.nan };
  expect "Churn.create: churn mean_up must be > 0 s (got 0)"
    { Churn.default with Churn.mean_up = 0. };
  expect "Churn.create: churn mean_down must be > 0 s (got -3)"
    { Churn.default with Churn.mean_down = -3. }

(* ------------------------------------------------------------------ *)
(* Engine integration                                                  *)

(* Advance the engine clock until some churning node is down; return it. *)
let find_down_node e =
  let churn = Option.get (Engine.churn e) in
  let rec search t =
    if t > 10_000. then Alcotest.fail "no node ever went down"
    else begin
      Engine.advance_to e t;
      let down = ref None in
      for i = n - 1 downto 0 do
        if Churn.churning churn i && not (Churn.is_up churn i) then
          down := Some i
      done;
      match !down with Some i -> i | None -> search (t +. 5.)
    end
  in
  search 5.

let test_down_node_never_answers () =
  let e =
    engine ~churn:{ Churn.default with Churn.fraction = 0.5; seed = 3 } ~seed:1 ()
  in
  let i = find_down_node e in
  let peer = if i = 0 then 1 else 0 in
  (* Both directions fail while the outage window lasts: a down node
     neither answers nor (in this model) issues probes. *)
  (match Engine.probe e peer i with
  | Engine.Down -> ()
  | _ -> Alcotest.fail "probe toward a down node must fail");
  (match Engine.probe e i peer with
  | Engine.Down -> ()
  | _ -> Alcotest.fail "probe from a down node must fail");
  Alcotest.(check bool) "down outcomes counted" true
    ((Engine.stats e).Probe_stats.down >= 2);
  (* Wait out the down window: the node answers again. *)
  let churn = Option.get (Engine.churn e) in
  let t = ref (Engine.now e) in
  while not (Churn.is_up churn i) && !t < 20_000. do
    t := !t +. 1.;
    Engine.advance_to e !t
  done;
  Alcotest.(check bool) "node came back" true (Churn.is_up churn i);
  match Engine.probe e peer i with
  | Engine.Rtt _ | Engine.Unmeasured -> ()
  | _ -> Alcotest.fail "recovered node must answer again"

let test_monotone_clock_under_churn () =
  let e =
    engine
      ~churn:{ Churn.default with Churn.fraction = 0.3; seed = 7 }
      ~charge_time:true ~seed:2 ()
  in
  let wl = Rng.create 11 in
  let last = ref (Engine.now e) in
  for _ = 1 to 400 do
    ignore (Engine.rtt e (Rng.int wl n) (Rng.int wl n));
    let now = Engine.now e in
    Alcotest.(check bool) "clock never goes backwards" true (now >= !last);
    last := now
  done;
  Alcotest.(check bool) "charged workload advanced the clock" true (!last > 0.);
  (* The churn schedule tracked the charged clock. *)
  let churn = Option.get (Engine.churn e) in
  Alcotest.(check (float 1e-9)) "churn clock slaved to engine clock"
    (Engine.now e) (Churn.now churn)

let test_meridian_completes_under_churn () =
  (* Online queries through a churning engine terminate (degraded, not
     hung) and the overall run still answers most queries. *)
  let m = Lazy.force matrix in
  let e =
    engine
      ~churn:{ Churn.default with Churn.fraction = 0.3; mean_down = 30.; seed = 13 }
      ~charge_time:true ~seed:3 ()
  in
  let sim = Sim.create () in
  Online.attach sim e;
  let nodes = Rng.sample_indices (Rng.create 17) ~n ~k:20 in
  let overlay =
    Overlay.build (Rng.create 19) m (Ring.unlimited_config n)
      ~meridian_nodes:nodes
  in
  let pick = Rng.create 23 in
  let answered = ref 0 and total = ref 0 in
  for _ = 1 to 60 do
    let client = Rng.int pick n in
    let start = nodes.(Rng.int pick (Array.length nodes)) in
    let target = Rng.int pick n in
    if
      (not (Overlay.is_meridian overlay target))
      && client <> start
      && not (Matrix.is_missing m client start)
    then begin
      incr total;
      let o = Online.closest_engine sim overlay e ~client ~start ~target in
      (* Completion, not success: a query hit by churn returns a nan
         delay instead of looping. *)
      if not (Float.is_nan o.Online.query.Query.chosen_delay) then
        incr answered
    end
  done;
  Alcotest.(check bool)
    (Printf.sprintf "most queries answered (%d/%d)" !answered !total)
    true
    (!total > 20 && float_of_int !answered >= 0.5 *. float_of_int !total);
  Alcotest.(check bool) "some probes hit down nodes" true
    ((Engine.stats e).Probe_stats.down > 0)

let () =
  Alcotest.run "churn"
    [
      ( "schedule",
        [
          Alcotest.test_case "path independence" `Quick
            test_schedule_path_independent;
          Alcotest.test_case "churning subset" `Quick test_churning_subset;
          Alcotest.test_case "config validation" `Quick test_validate_config;
        ] );
      ( "engine",
        [
          Alcotest.test_case "down node never answers" `Quick
            test_down_node_never_answers;
          Alcotest.test_case "monotone clock" `Quick
            test_monotone_clock_under_churn;
          Alcotest.test_case "meridian completes" `Quick
            test_meridian_completes_under_churn;
        ] );
    ]
