(* Metrics-snapshot gate for CI: compare a freshly produced tivlab
   --metrics-out summary against a committed fixture.

     metrics_check [--tol F] EXPECTED ACTUAL

   The comparison is structural, not textual: both files must carry the
   same keys (a metric appearing or disappearing is a failure either
   way), strings and booleans must match exactly, and numbers must agree
   within a relative tolerance — seeded runs are bit-deterministic in
   probe *counts*, but derived means can drift by an ulp across libm
   versions.  The trace ring is excluded: event wording is
   documentation, not contract. *)

module Json = Tivaware_obs.Json

(* Default relative tolerance for numeric fields; override per scenario
   with --tol when a summary carries genuinely noisy series. *)
let default_tolerance = 0.02

let failures = ref 0

let fail path fmt =
  Printf.ksprintf
    (fun s ->
      incr failures;
      Printf.printf "FAIL %s: %s\n" path s)
    fmt

let close ~tol a b =
  a = b
  || Float.abs (a -. b) <= tol *. Float.max (Float.abs a) (Float.abs b)

let rec compare_json ~tol path expected actual =
  match (expected, actual) with
  | Json.Null, Json.Null -> ()
  | Json.Bool a, Json.Bool b ->
    if a <> b then fail path "expected %b, got %b" a b
  | (Json.Int _ | Json.Float _), (Json.Int _ | Json.Float _) ->
    let a = Option.get (Json.to_float expected)
    and b = Option.get (Json.to_float actual) in
    if not (close ~tol a b) then
      fail path "expected %g, got %g (tolerance %g)" a b tol
  | Json.String a, Json.String b ->
    if a <> b then fail path "expected %S, got %S" a b
  | Json.List a, Json.List b ->
    if List.length a <> List.length b then
      fail path "expected %d elements, got %d" (List.length a) (List.length b)
    else
      List.iteri
        (fun i (e, a) -> compare_json ~tol (Printf.sprintf "%s[%d]" path i) e a)
        (List.combine a b)
  | Json.Obj a, Json.Obj b ->
    let keys l = List.sort compare (List.map fst l) in
    List.iter
      (fun k ->
        if not (List.mem_assoc k b) then fail path "missing key %S" k)
      (keys a);
    List.iter
      (fun k ->
        if not (List.mem_assoc k a) then fail path "unexpected key %S" k)
      (keys b);
    List.iter
      (fun (k, e) ->
        match List.assoc_opt k b with
        | Some v -> compare_json ~tol (path ^ "." ^ k) e v
        | None -> ())
      a
  | _ ->
    fail path "type mismatch"

(* Drop the trace ring before comparing. *)
let strip_trace = function
  | Json.Obj fields ->
    Json.Obj (List.filter (fun (k, _) -> k <> "trace" && k <> "trace_dropped") fields)
  | v -> v

let read_json path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      prerr_endline ("metrics_check: " ^ msg);
      exit 2
  in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  try Json.of_string s
  with Failure msg ->
    prerr_endline (Printf.sprintf "metrics_check: %s: %s" path msg);
    exit 2

let () =
  let tol = ref default_tolerance in
  let positional = ref [] in
  let rec parse = function
    | "--tol" :: v :: rest ->
      tol := float_of_string v;
      parse rest
    | arg :: rest ->
      positional := arg :: !positional;
      parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let expected_path, actual_path =
    match List.rev !positional with
    | [ e; a ] -> (e, a)
    | _ ->
      prerr_endline "usage: metrics_check [--tol F] EXPECTED ACTUAL";
      exit 2
  in
  let expected = strip_trace (read_json expected_path)
  and actual = strip_trace (read_json actual_path) in
  compare_json ~tol:!tol "$" expected actual;
  if !failures > 0 then begin
    Printf.printf "%d mismatch(es) between %s and %s\n" !failures expected_path
      actual_path;
    exit 1
  end
  else Printf.printf "%s matches %s (tolerance %g)\n" actual_path expected_path !tol
