(* Metrics-snapshot gate for CI: compare a freshly produced tivlab
   --metrics-out summary against a committed fixture.

     metrics_check [--tol F] EXPECTED ACTUAL

   The comparison is Tivaware_obs.Diff.structural — same keys on both
   sides, strings/booleans exact, numbers within a relative tolerance —
   with the trace ring excluded: event wording is documentation, not
   contract. *)

module Json = Tivaware_obs.Json
module Diff = Tivaware_obs.Diff

let read_json path =
  let ic =
    try open_in_bin path
    with Sys_error msg ->
      prerr_endline ("metrics_check: " ^ msg);
      exit 2
  in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  try Json.of_string s
  with Failure msg ->
    prerr_endline (Printf.sprintf "metrics_check: %s: %s" path msg);
    exit 2

let () =
  let tol = ref Diff.default_tolerance in
  let positional = ref [] in
  let rec parse = function
    | "--tol" :: v :: rest ->
      tol := float_of_string v;
      parse rest
    | arg :: rest ->
      positional := arg :: !positional;
      parse rest
    | [] -> ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let expected_path, actual_path =
    match List.rev !positional with
    | [ e; a ] -> (e, a)
    | _ ->
      prerr_endline "usage: metrics_check [--tol F] EXPECTED ACTUAL";
      exit 2
  in
  let expected = Diff.strip_trace (read_json expected_path)
  and actual = Diff.strip_trace (read_json actual_path) in
  let failures = Diff.structural ~tol:!tol expected actual in
  List.iter
    (fun (path, msg) -> Printf.printf "FAIL %s: %s\n" path msg)
    failures;
  match List.length failures with
  | 0 -> Printf.printf "%s matches %s (tolerance %g)\n" actual_path expected_path !tol
  | n ->
    Printf.printf "%d mismatch(es) between %s and %s\n" n expected_path
      actual_path;
    exit 1
