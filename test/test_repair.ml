(* Churn-aware protocol repair: liveness under churn for the four
   protocol layers, against a churning measurement engine.

   The contracts under test (see DESIGN.md, "Dynamics and repair"):

   - Vivaldi ({!Dynamic_neighbors.repair_neighbors}): after a repair
     pass no live node keeps a neighbor that is down.
   - Chord ({!Chord.heal_engine}): once healing converges, lookups
     never terminate at a node that is actually down, and a second
     pass at the same instant is a fixed point.
   - Meridian ({!Overlay.repair_engine}): ring maintenance evicts all
     dead members from live hosts' rings, query success recovers after
     a churn burst, and gossiped evictions re-enter once the member
     revives.
   - Multicast ({!Multicast.repair_engine}): the tree stays connected
     (every member reaches the root through live members) and revived
     members rejoin.

   All repair traffic is charged through the engine, so each test also
   checks the pass shows up in per-label probe accounting.

   Like test_measure_properties, the suite reads TIVAWARE_PROP_SEED so
   the CI matrix re-runs it under distinct seeds; any failure stays
   reproducible under its seed. *)

module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Ring = Tivaware_meridian.Ring
module Query = Tivaware_meridian.Query
module Overlay = Tivaware_meridian.Overlay
module Online = Tivaware_meridian.Online
module Sim = Tivaware_eventsim.Sim
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Churn = Tivaware_measure.Churn
module Probe_stats = Tivaware_measure.Probe_stats
module System = Tivaware_vivaldi.System
module Dynamic_neighbors = Tivaware_vivaldi.Dynamic_neighbors
module Protocol = Tivaware_vivaldi.Protocol
module Chord = Tivaware_dht.Chord
module Id_space = Tivaware_dht.Id_space
module Multicast = Tivaware_overlay.Multicast

let prop_seed =
  match Sys.getenv_opt "TIVAWARE_PROP_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 0)
  | None -> 0

let rng salt = Rng.create ((prop_seed * 1_000_003) + salt)
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let n = 60

let matrix =
  lazy (Datasets.generate ~size:n ~seed:2007 Datasets.Ds2).Generator.matrix

(* Heavy churn with long outages: at steady state roughly a third of
   the population is down, and a node that goes down stays down long
   enough for repair-time assertions (the clock is frozen while
   [charge_time] is off). *)
let burst_churn seed =
  { Churn.fraction = 0.5; mean_up = 60.; mean_down = 120.; seed }

let engine ?(churn = burst_churn 0) ~seed () =
  Engine.of_matrix
    ~config:
      {
        Engine.fault = Fault.default;
        profile = None;
        churn = Some churn;
        dynamics = None;
        budget = None;
        cache_ttl = None;
        cache_capacity = None;
        charge_time = false;
        seed;
      }
    (Lazy.force matrix)

let churn_of e = Option.get (Engine.churn e)

let repair_label_charged e label =
  checkb
    (Printf.sprintf "%s probes accounted" label)
    true
    (Probe_stats.label_count (Engine.stats e) label > 0)

(* ------------------------------------------------------------------ *)
(* Vivaldi: neighbor sets contain no dead node after a repair pass     *)

let test_vivaldi_no_dead_neighbors () =
  let e = engine ~churn:(burst_churn (1 + prop_seed)) ~seed:1 () in
  let sys = System.create_with_engine (rng 1) e in
  Engine.advance_to e 200.;
  let churn = churn_of e in
  let dead_neighbor_edges () =
    let count = ref 0 in
    for i = 0 to n - 1 do
      if Churn.is_up churn i then
        Array.iter
          (fun j -> if not (Churn.is_up churn j) then incr count)
          (System.neighbors sys i)
    done;
    !count
  in
  checkb "the burst left dead nodes in neighbor sets" true
    (dead_neighbor_edges () > 0);
  let r = Dynamic_neighbors.repair_neighbors sys in
  checkb "repair evicted something" true (r.Dynamic_neighbors.evicted > 0);
  checkb "repair resampled replacements" true
    (r.Dynamic_neighbors.resampled > 0);
  checki "no live node keeps a dead neighbor" 0 (dead_neighbor_edges ());
  repair_label_charged e "vivaldi-repair"

(* ------------------------------------------------------------------ *)
(* Chord: lookups never return a dead owner once healing converges     *)

let test_chord_lookup_liveness () =
  let e = engine ~churn:(burst_churn (2 + prop_seed)) ~seed:2 () in
  let t = Chord.build_engine ~successor_list:8 e in
  Engine.advance_to e 200.;
  let churn = churn_of e in
  let h1 = Chord.heal_engine t e in
  checkb "first pass marks failures" true (h1.Chord.marked_dead > 0);
  checkb "first pass reroutes successors" true (h1.Chord.rerouted > 0);
  (* Healing at a frozen instant is a fixed point: a second pass
     changes nothing. *)
  let h2 = Chord.heal_engine t e in
  checki "converged: no new deaths" 0 h2.Chord.marked_dead;
  checki "converged: no new reroutes" 0 h2.Chord.rerouted;
  (* The failure belief never accuses a live node (no loss in this
     engine, so the only nan a heal probe can see is a real outage). *)
  for i = 0 to n - 1 do
    if Chord.believed_dead t i then
      checkb (Printf.sprintf "belief about %d is true" i) false
        (Churn.is_up churn i)
  done;
  (* Lookups from live sources terminate at live owners. *)
  let m = Lazy.force matrix in
  let g = rng 2 in
  let lookups = ref 0 in
  while !lookups < 200 do
    let source = Rng.int g n in
    if Churn.is_up churn source then begin
      incr lookups;
      let key =
        Id_space.add (Id_space.of_node (Rng.int g n)) (Rng.int g 1_000_000)
      in
      let o = Chord.lookup t m ~source ~key in
      checkb
        (Printf.sprintf "owner %d of key %d is alive" o.Chord.owner key)
        true
        (Churn.is_up churn o.Chord.owner)
    end
  done;
  repair_label_charged e "dht-repair";
  (* A revived node is re-probed by its predecessor and its belief
     cleared on the next pass. *)
  let victim =
    let v = ref None in
    for i = n - 1 downto 0 do
      if Chord.believed_dead t i then v := Some i
    done;
    Option.get !v
  in
  let t' = ref (Engine.now e) in
  while (not (Churn.is_up churn victim)) && !t' < 100_000. do
    t' := !t' +. 10.;
    Engine.advance_to e !t'
  done;
  checkb "victim eventually revived" true (Churn.is_up churn victim);
  let h3 = Chord.heal_engine t e in
  checkb "heal observed revivals" true (h3.Chord.revived > 0);
  checkb "revived victim's belief cleared" false (Chord.believed_dead t victim)

(* ------------------------------------------------------------------ *)
(* Meridian: rings hold only live members; query success recovers      *)

let test_meridian_recovery () =
  let e = engine ~churn:(burst_churn (3 + prop_seed)) ~seed:3 () in
  let m = Lazy.force matrix in
  let nodes = Rng.sample_indices (rng 3) ~n ~k:24 in
  let overlay =
    Overlay.build (rng 4) m (Ring.unlimited_config n) ~meridian_nodes:nodes
  in
  let sim = Sim.create () in
  Online.attach sim e;
  let churn = churn_of e in
  let run_queries ~live_only =
    let pick = rng (if live_only then 5 else 6) in
    let answered = ref 0 and total = ref 0 in
    while !total < 40 do
      let client = Rng.int pick n in
      let start = nodes.(Rng.int pick (Array.length nodes)) in
      let target = Rng.int pick n in
      let eligible =
        (not (Overlay.is_meridian overlay target))
        && client <> start
        && (not (Matrix.is_missing m client start))
        && ((not live_only)
           || Churn.is_up churn client && Churn.is_up churn start
              && Churn.is_up churn target)
      in
      if eligible then begin
        incr total;
        let o = Online.closest_engine sim overlay e ~client ~start ~target in
        if not (Float.is_nan o.Online.query.Query.chosen_delay) then
          incr answered
      end
    done;
    float_of_int !answered /. float_of_int !total
  in
  Engine.advance_to e 200.;
  (* During the burst, queries landing on dead starts or targets fail. *)
  let before = run_queries ~live_only:false in
  checkb
    (Printf.sprintf "burst degraded query success (%.2f)" before)
    true (before < 0.95);
  let dead_ring_entries () =
    let count = ref 0 in
    Array.iter
      (fun host ->
        if Churn.is_up churn host then
          List.iter
            (fun mb ->
              if not (Churn.is_up churn mb.Overlay.id) then incr count)
            (Overlay.all_entries overlay host))
      nodes;
    !count
  in
  checkb "the burst left dead members in rings" true (dead_ring_entries () > 0);
  let r1 = Overlay.repair_engine overlay e in
  checkb "maintenance evicted dead members" true (r1.Overlay.evicted > 0);
  checki "no live host keeps a dead ring member" 0 (dead_ring_entries ());
  checkb "evictions are gossiped for re-entry" true
    (Overlay.pending_reentries overlay > 0);
  (* Clients retry against live starts: service recovers. *)
  let after = run_queries ~live_only:true in
  checkb
    (Printf.sprintf "query success recovered (%.2f -> %.2f)" before after)
    true
    (after > before && after >= 0.8);
  repair_label_charged e "meridian-repair";
  (* Once members revive, later passes file them back into rings; keep
     running maintenance until a revival and its host line up. *)
  let reentered = ref 0 in
  let t = ref (Engine.now e) in
  while !reentered = 0 && !t < 5_000. do
    t := !t +. 100.;
    Engine.advance_to e !t;
    let r = Overlay.repair_engine overlay e in
    reentered := !reentered + r.Overlay.reentered
  done;
  checkb "revived members re-entered rings" true (!reentered > 0)

(* ------------------------------------------------------------------ *)
(* Multicast: the tree stays connected through a burst                 *)

let test_multicast_tree_connected () =
  let e = engine ~churn:(burst_churn (4 + prop_seed)) ~seed:4 () in
  let churn = churn_of e in
  (* Root a node outside the churning subset: the repair contract
     covers member failure, not root failure. *)
  let root =
    let r = ref (-1) in
    for i = n - 1 downto 0 do
      if not (Churn.churning churn i) then r := i
    done;
    !r
  in
  checkb "found a stable root" true (root >= 0);
  let join_order =
    let rest = Array.of_list (List.filter (( <> ) root) (List.init n Fun.id)) in
    Rng.shuffle (rng 7) rest;
    Array.append [| root |] rest
  in
  let t = Multicast.build_engine e ~join_order in
  let initial_members = List.length (Multicast.members t) in
  checkb "most nodes joined" true (initial_members > n / 2);
  Engine.advance_to e 200.;
  let r = Multicast.repair_engine t (rng 8) e in
  checkb "repair detached dead members" true (r.Multicast.detached > 0);
  let assert_connected () =
    List.iter
      (fun node ->
        checkb (Printf.sprintf "member %d is alive" node) true
          (Churn.is_up churn node);
        (* Ascend to the root through joined, live members. *)
        let rec ascend cur steps =
          checkb (Printf.sprintf "ascent from %d bounded" node) true (steps < n);
          if cur <> Multicast.root t then begin
            match Multicast.parent t cur with
            | None ->
              Alcotest.failf "member %d detached from the tree at %d" node cur
            | Some p ->
              checkb (Printf.sprintf "parent %d of %d is alive" p cur) true
                (Churn.is_up churn p);
              ascend p (steps + 1)
          end
        in
        ascend node 0)
      (Multicast.members t)
  in
  assert_connected ();
  repair_label_charged e "multicast-repair";
  (* Revived members that still want the group rejoin on later passes,
     and the repaired tree stays connected. *)
  let rejoined = ref 0 in
  let clock = ref (Engine.now e) in
  let g = rng 9 in
  while !rejoined = 0 && !clock < 5_000. do
    clock := !clock +. 100.;
    Engine.advance_to e !clock;
    let r' = Multicast.repair_engine t g e in
    rejoined := !rejoined + r'.Multicast.rejoined
  done;
  checkb "revived members rejoined" true (!rejoined > 0);
  assert_connected ()

(* Worst-case burst: every direct child of the root churns out in one
   pass, orphaning all of the root's subtrees at once.  The repair
   contract says the root is always an attachment candidate, so no
   orphaned grandchild may fragment away — the tree re-hangs every
   surviving member in a single pass.  Uses the oracle-mode repair so
   the down set can be forced to exactly the root's children. *)
let test_multicast_root_children_burst () =
  let m = Lazy.force matrix in
  let join_order =
    let rest = Array.of_list (List.init (n - 1) (fun i -> i + 1)) in
    Rng.shuffle (rng 10) rest;
    Array.append [| 0 |] rest
  in
  let predict i j = Matrix.get m i j in
  (* A small degree cap forces real depth: the root's children own
     subtrees, not leaves, so the burst actually orphans someone. *)
  let t =
    Multicast.build
      ~config:{ Multicast.default_config with Multicast.max_degree = 3 }
      m ~join_order ~predict
  in
  let before = List.length (Multicast.members t) in
  checki "everyone joined a complete matrix" n before;
  let victims = Multicast.children t (Multicast.root t) in
  checkb "root has direct children" true (victims <> []);
  let orphaned =
    List.concat_map (fun v -> Multicast.children t v) victims
  in
  checkb "the burst orphans at least one grandchild" true (orphaned <> []);
  let up i = not (List.mem i victims) in
  let r = Multicast.repair t (rng 11) m ~predict ~up in
  checki "exactly the root's children detached" (List.length victims)
    r.Multicast.detached;
  checkb "orphaned subtrees re-grafted" true
    (r.Multicast.reattached >= List.length orphaned);
  let members = Multicast.members t in
  checki "no one else left the tree" (before - List.length victims)
    (List.length members);
  List.iter
    (fun node ->
      checkb (Printf.sprintf "member %d is up" node) true (up node);
      let rec ascend cur steps =
        checkb (Printf.sprintf "ascent from %d bounded" node) true (steps < n);
        if cur <> Multicast.root t then
          match Multicast.parent t cur with
          | None ->
            Alcotest.failf "member %d detached from the tree at %d" node cur
          | Some p ->
            checkb (Printf.sprintf "parent %d of %d is up" p cur) true (up p);
            ascend p (steps + 1)
      in
      ascend node 0)
    members;
  (* Revival: with everyone back up, one pass re-admits all victims. *)
  let r' = Multicast.repair t (rng 12) m ~predict ~up:(fun _ -> true) in
  checki "all victims rejoined" (List.length victims) r'.Multicast.rejoined;
  checki "full membership restored" before
    (List.length (Multicast.members t))

(* ------------------------------------------------------------------ *)
(* Revival regression: a node that comes back answers probes again     *)

(* Engine path: churn down-windows are mirrored into the fault
   injector's node-down state and cleared on revival. *)
let test_engine_revival_answers () =
  let e = engine ~churn:(burst_churn 11) ~seed:5 () in
  let churn = churn_of e in
  Engine.advance_to e 200.;
  let victim =
    let v = ref None in
    for i = n - 1 downto 0 do
      if Churn.churning churn i && not (Churn.is_up churn i) then v := Some i
    done;
    Option.get !v
  in
  let peer = if victim = 0 then 1 else 0 in
  (match Engine.probe e peer victim with
  | Engine.Down -> ()
  | _ -> Alcotest.fail "probe toward the down victim must fail");
  let t = ref (Engine.now e) in
  while (not (Churn.is_up churn victim)) && !t < 100_000. do
    t := !t +. 10.;
    Engine.advance_to e !t
  done;
  checkb "victim revived" true (Churn.is_up churn victim);
  checkb "fault state cleared on revival" false
    (Fault.node_down (Engine.fault e) victim);
  match Engine.probe e peer victim with
  | Engine.Rtt _ | Engine.Unmeasured -> ()
  | _ -> Alcotest.fail "revived victim must answer probes again"

(* Oracle-mode wrapper path: Protocol.run_with_churn keeps its own
   alive array; every transition must be mirrored into Fault.set_down
   both ways.  The regression this pins: nodes used to be marked down
   but never cleared, so any node that ever failed stayed unreachable
   forever.  With correct mirroring, the fault injector's down set at
   the end of the run is exactly the currently-down population —
   failures minus rejoins. *)
let test_protocol_churn_revival_mirrored () =
  let m = Lazy.force matrix in
  (* Fixed seeds: the assertion counts exact protocol state at the end
     of the run, so this test does not vary with TIVAWARE_PROP_SEED. *)
  let s = System.create (Rng.create 71) m in
  let sim = Sim.create () in
  let churn = { Protocol.mean_uptime = 8.; mean_downtime = 0.5 } in
  let stats = Protocol.run_with_churn ~churn sim s ~duration:80. in
  checkb "failures happened" true (stats.Protocol.failures > 0);
  checkb "rejoins happened" true (stats.Protocol.rejoins > 0);
  let fault = Engine.fault (System.engine s) in
  let down_now = ref 0 in
  for i = 0 to n - 1 do
    if Fault.node_down fault i then incr down_now
  done;
  checki "fault down set = currently-down population"
    (stats.Protocol.failures - stats.Protocol.rejoins)
    !down_now;
  (* Every rejoined node answers: probe a node the injector says is up. *)
  let e = System.engine s in
  let up_node =
    let v = ref None in
    for i = n - 1 downto 1 do
      if not (Fault.node_down fault i) then v := Some i
    done;
    Option.get !v
  in
  let peer = if up_node = 0 then 1 else 0 in
  match Engine.probe e peer up_node with
  | Engine.Rtt _ | Engine.Unmeasured -> ()
  | _ -> Alcotest.fail "a node the injector says is up must answer"

let () =
  Alcotest.run "repair"
    [
      ( "vivaldi",
        [
          Alcotest.test_case "no dead neighbors after repair" `Quick
            test_vivaldi_no_dead_neighbors;
        ] );
      ( "chord",
        [
          Alcotest.test_case "lookup liveness after healing" `Quick
            test_chord_lookup_liveness;
        ] );
      ( "meridian",
        [
          Alcotest.test_case "ring maintenance and query recovery" `Quick
            test_meridian_recovery;
        ] );
      ( "multicast",
        [
          Alcotest.test_case "tree connected through a burst" `Quick
            test_multicast_tree_connected;
          Alcotest.test_case "root's children all churn out at once" `Quick
            test_multicast_root_children_burst;
        ] );
      ( "revival",
        [
          Alcotest.test_case "engine clears fault state" `Quick
            test_engine_revival_answers;
          Alcotest.test_case "protocol churn mirrors both ways" `Quick
            test_protocol_churn_revival_mirrored;
        ] );
    ]
