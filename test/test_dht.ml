(* Tests for the Chord-like DHT with proximity neighbor selection. *)

module Rng = Tivaware_util.Rng
module Stats = Tivaware_util.Stats
module Matrix = Tivaware_delay_space.Matrix
module Euclidean = Tivaware_topology.Euclidean
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Id_space = Tivaware_dht.Id_space
module Chord = Tivaware_dht.Chord

let qcheck ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Id_space                                                            *)

let test_id_space_basics () =
  Alcotest.(check int) "bits" 61 Id_space.bits;
  Alcotest.(check int) "wrap" 0 (Id_space.add (Id_space.modulus - 1) 1);
  Alcotest.(check int) "distance forward" 5 (Id_space.distance_cw 10 15);
  Alcotest.(check int) "distance wrapping" (Id_space.modulus - 5)
    (Id_space.distance_cw 15 10)

let test_id_space_between () =
  Alcotest.(check bool) "inside" true (Id_space.between_cw 10 12 20);
  Alcotest.(check bool) "endpoint a" false (Id_space.between_cw 10 10 20);
  Alcotest.(check bool) "endpoint b" false (Id_space.between_cw 10 20 20);
  Alcotest.(check bool) "wrapping arc" true
    (Id_space.between_cw (Id_space.modulus - 5) 3 10)

let prop_id_space_of_node_in_range =
  qcheck "node ids in range and deterministic"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun idx ->
      let id = Id_space.of_node idx in
      id >= 0 && id < Id_space.modulus && id = Id_space.of_node idx)

let test_id_space_collision_free_smallish () =
  let seen = Hashtbl.create 4096 in
  for idx = 0 to 4095 do
    let id = Id_space.of_node idx in
    Alcotest.(check bool) "no collision among 4096 nodes" false (Hashtbl.mem seen id);
    Hashtbl.replace seen id ()
  done

(* ------------------------------------------------------------------ *)
(* Chord structure                                                     *)

let euclidean_matrix seed n =
  Euclidean.uniform_box (Rng.create seed) ~n ~dim:3 ~side_ms:200.

let test_successors_form_a_cycle () =
  let m = euclidean_matrix 1 40 in
  let c = Chord.build m in
  let visited = Array.make 40 false in
  let rec walk node steps =
    if steps > 40 then Alcotest.fail "cycle too long"
    else if visited.(node) then
      Alcotest.(check int) "cycle closes at start" 0 node
    else begin
      visited.(node) <- true;
      walk (Chord.successor c node) (steps + 1)
    end
  in
  walk 0 0;
  Alcotest.(check bool) "all nodes on the cycle" true (Array.for_all Fun.id visited)

let test_successor_is_id_order () =
  let m = euclidean_matrix 2 30 in
  let c = Chord.build m in
  (* The successor must be the node with the smallest clockwise id
     distance. *)
  for node = 0 to 29 do
    let id = Chord.node_id c node in
    let succ = Chord.successor c node in
    let succ_dist = Id_space.distance_cw id (Chord.node_id c succ) in
    for other = 0 to 29 do
      if other <> node then
        Alcotest.(check bool) "successor minimal" true
          (Id_space.distance_cw id (Chord.node_id c other) >= succ_dist)
    done
  done

let test_owner_of () =
  let m = euclidean_matrix 3 20 in
  let c = Chord.build m in
  for node = 0 to 19 do
    let id = Chord.node_id c node in
    Alcotest.(check int) "node owns its own id" node (Chord.owner_of c id);
    (* A key just past the node's id is owned by its successor. *)
    Alcotest.(check int) "key past id owned by successor" (Chord.successor c node)
      (Chord.owner_of c (Id_space.add id 1))
  done

let test_fingers_not_self () =
  let m = euclidean_matrix 4 50 in
  let c = Chord.build m in
  for node = 0 to 49 do
    Array.iter
      (fun f ->
        Alcotest.(check bool) "finger is not self" true (f <> node);
        Alcotest.(check bool) "finger valid" true (f >= 0 && f < 50))
      (Chord.fingers c node)
  done

(* ------------------------------------------------------------------ *)
(* Lookup                                                              *)

let test_lookup_reaches_owner () =
  let m = euclidean_matrix 5 60 in
  let c = Chord.build m in
  let rng = Rng.create 6 in
  for _ = 1 to 200 do
    let source = Rng.int rng 60 in
    let key = Rng.int rng Id_space.modulus in
    let l = Chord.lookup c m ~source ~key in
    Alcotest.(check int) "route ends at owner" (Chord.owner_of c key)
      l.Chord.owner;
    (match List.rev l.Chord.route with
    | last :: _ -> Alcotest.(check int) "route last = owner" l.Chord.owner last
    | [] -> Alcotest.fail "empty route");
    Alcotest.(check int) "hops = route - 1" (List.length l.Chord.route - 1)
      l.Chord.hops;
    Alcotest.(check bool) "latency non-negative" true (l.Chord.latency >= 0.)
  done

let test_lookup_logarithmic_hops () =
  let m = euclidean_matrix 7 128 in
  let c = Chord.build m in
  let rng = Rng.create 8 in
  let hops = ref [] in
  for _ = 1 to 300 do
    let l = Chord.lookup c m ~source:(Rng.int rng 128) ~key:(Rng.int rng Id_space.modulus) in
    hops := float_of_int l.Chord.hops :: !hops
  done;
  let mean = Stats.mean (Array.of_list !hops) in
  (* log2 128 = 7; greedy Chord averages ~ (1/2) log2 n. *)
  Alcotest.(check bool) (Printf.sprintf "mean hops %.1f bounded" mean) true
    (mean <= 8.)

let test_lookup_self_key () =
  let m = euclidean_matrix 9 20 in
  let c = Chord.build m in
  let l = Chord.lookup c m ~source:5 ~key:(Chord.node_id c 5) in
  Alcotest.(check int) "own key, zero hops" 0 l.Chord.hops;
  Alcotest.(check (float 0.)) "zero latency" 0. l.Chord.latency

let test_lookup_bad_source () =
  let m = euclidean_matrix 10 20 in
  let c = Chord.build m in
  Alcotest.check_raises "bad source" (Invalid_argument "Chord.lookup: bad source")
    (fun () -> ignore (Chord.lookup c m ~source:100 ~key:3))

let prop_lookup_deterministic =
  qcheck ~count:30 "same lookup, same route"
    QCheck2.Gen.(pair (int_range 0 30) int)
    (fun (source, key_seed) ->
      let m = euclidean_matrix 11 31 in
      let c = Chord.build m in
      let key = Id_space.of_node (abs key_seed) in
      let a = Chord.lookup c m ~source ~key in
      let b = Chord.lookup c m ~source ~key in
      a = b)

(* ------------------------------------------------------------------ *)
(* PNS                                                                 *)

let test_pns_reduces_latency () =
  (* On a TIV-rich matrix, PNS with the measured-delay oracle must beat
     plain Chord on mean lookup latency; the owner reached must be
     identical (PNS changes the route, not the result). *)
  let data = Datasets.generate ~size:150 ~seed:12 Datasets.Ds2 in
  let m = data.Generator.matrix in
  let plain = Chord.build m in
  let pns = Chord.build ~predict:(fun a b -> Matrix.get m a b) m in
  let rng = Rng.create 13 in
  let lat_plain = ref [] and lat_pns = ref [] in
  for _ = 1 to 400 do
    let source = Rng.int rng 150 and key = Rng.int rng Id_space.modulus in
    let a = Chord.lookup plain m ~source ~key in
    let b = Chord.lookup pns m ~source ~key in
    Alcotest.(check int) "same owner" a.Chord.owner b.Chord.owner;
    lat_plain := a.Chord.latency :: !lat_plain;
    lat_pns := b.Chord.latency :: !lat_pns
  done;
  let mean l = Stats.mean (Array.of_list l) in
  Alcotest.(check bool)
    (Printf.sprintf "PNS faster (%.0f vs %.0f ms)" (mean !lat_pns) (mean !lat_plain))
    true
    (mean !lat_pns < mean !lat_plain)

let test_pns_candidate_budget () =
  (* More candidates can only improve (or match) oracle PNS quality. *)
  let data = Datasets.generate ~size:120 ~seed:14 Datasets.Ds2 in
  let m = data.Generator.matrix in
  let mean_latency candidates =
    let c = Chord.build ~candidates ~predict:(fun a b -> Matrix.get m a b) m in
    let rng = Rng.create 15 in
    let acc = ref 0. in
    for _ = 1 to 300 do
      let l = Chord.lookup c m ~source:(Rng.int rng 120) ~key:(Rng.int rng Id_space.modulus) in
      acc := !acc +. l.Chord.latency
    done;
    !acc /. 300.
  in
  let l1 = mean_latency 1 and l16 = mean_latency 16 in
  Alcotest.(check bool)
    (Printf.sprintf "16 candidates <= 1 candidate (%.0f vs %.0f)" l16 l1)
    true (l16 <= l1 +. 1e-6)

let test_pns_latency_never_negative_progress () =
  (* Route latency equals the sum of its hop delays. *)
  let data = Datasets.generate ~size:80 ~seed:18 Datasets.Ds2 in
  let m = data.Generator.matrix in
  let c = Chord.build ~predict:(fun a b -> Matrix.get m a b) m in
  let rng = Rng.create 19 in
  for _ = 1 to 100 do
    let l =
      Chord.lookup c m ~source:(Rng.int rng 80) ~key:(Rng.int rng Id_space.modulus)
    in
    let rec sum acc = function
      | a :: (b :: _ as rest) ->
        let d = Matrix.get m a b in
        sum (acc +. if Float.is_nan d then 0. else d) rest
      | _ -> acc
    in
    Alcotest.(check (float 1e-6)) "latency = sum of hop delays"
      (sum 0. l.Chord.route) l.Chord.latency
  done

let test_pns_route_no_cycles () =
  let m = euclidean_matrix 20 100 in
  let c = Chord.build m in
  let rng = Rng.create 21 in
  for _ = 1 to 200 do
    let l =
      Chord.lookup c m ~source:(Rng.int rng 100) ~key:(Rng.int rng Id_space.modulus)
    in
    let seen = Hashtbl.create 16 in
    List.iter
      (fun node ->
        Alcotest.(check bool) "no revisits" false (Hashtbl.mem seen node);
        Hashtbl.replace seen node ())
      l.Chord.route
  done

let test_pns_engine_oracle_equivalence () =
  (* PNS routed through a default-config measurement engine must be
     bit-for-bit the oracle PNS build: same fingers, same successors,
     same routes and latencies. *)
  let module Engine = Tivaware_measure.Engine in
  let data = Datasets.generate ~size:100 ~seed:22 Datasets.Ds2 in
  let m = data.Generator.matrix in
  let oracle = Chord.build ~candidates:8 ~predict:(fun a b -> Matrix.get m a b) m in
  let engine = Engine.of_matrix m in
  let engined = Chord.build_engine ~candidates:8 engine in
  for node = 0 to 99 do
    Alcotest.(check int) "same successor" (Chord.successor oracle node)
      (Chord.successor engined node);
    Alcotest.(check (array int)) "same fingers" (Chord.fingers oracle node)
      (Chord.fingers engined node)
  done;
  let rng = Rng.create 23 in
  for _ = 1 to 200 do
    let source = Rng.int rng 100 and key = Rng.int rng Id_space.modulus in
    let a = Chord.lookup oracle m ~source ~key in
    let b = Chord.lookup engined m ~source ~key in
    Alcotest.(check int) "same owner" a.Chord.owner b.Chord.owner;
    Alcotest.(check (list int)) "same route" a.Chord.route b.Chord.route;
    Alcotest.(check (float 0.)) "same latency" a.Chord.latency b.Chord.latency
  done;
  (* The engine really served the build: one probe per prediction, no
     failures, clock untouched. *)
  let st = Engine.stats engine in
  Alcotest.(check bool) "engine probed" true (st.Tivaware_measure.Probe_stats.requests > 0);
  Alcotest.(check int) "no failures" 0 st.Tivaware_measure.Probe_stats.failed;
  Alcotest.(check (float 0.)) "clock untouched" 0. (Engine.now engine)

let test_pns_abstaining_predictor_falls_back () =
  let m = euclidean_matrix 16 40 in
  let c = Chord.build ~predict:(fun _ _ -> nan) m in
  let plain = Chord.build m in
  (* With an all-nan predictor PNS must fall back to the first arc
     candidate: lookups still terminate correctly. *)
  let rng = Rng.create 17 in
  for _ = 1 to 100 do
    let source = Rng.int rng 40 and key = Rng.int rng Id_space.modulus in
    let a = Chord.lookup c m ~source ~key in
    Alcotest.(check int) "owner correct" (Chord.owner_of plain key) a.Chord.owner
  done

let () =
  Alcotest.run "dht"
    [
      ( "id_space",
        [
          Alcotest.test_case "basics" `Quick test_id_space_basics;
          Alcotest.test_case "between" `Quick test_id_space_between;
          prop_id_space_of_node_in_range;
          Alcotest.test_case "collision-free small" `Quick test_id_space_collision_free_smallish;
        ] );
      ( "structure",
        [
          Alcotest.test_case "successor cycle" `Quick test_successors_form_a_cycle;
          Alcotest.test_case "successor minimal" `Quick test_successor_is_id_order;
          Alcotest.test_case "owner_of" `Quick test_owner_of;
          Alcotest.test_case "fingers valid" `Quick test_fingers_not_self;
        ] );
      ( "lookup",
        [
          Alcotest.test_case "reaches owner" `Quick test_lookup_reaches_owner;
          Alcotest.test_case "logarithmic hops" `Quick test_lookup_logarithmic_hops;
          Alcotest.test_case "self key" `Quick test_lookup_self_key;
          Alcotest.test_case "bad source" `Quick test_lookup_bad_source;
          prop_lookup_deterministic;
        ] );
      ( "pns",
        [
          Alcotest.test_case "reduces latency" `Quick test_pns_reduces_latency;
          Alcotest.test_case "candidate budget" `Quick test_pns_candidate_budget;
          Alcotest.test_case "latency accounting" `Quick test_pns_latency_never_negative_progress;
          Alcotest.test_case "routes acyclic" `Quick test_pns_route_no_cycles;
          Alcotest.test_case "abstaining predictor" `Quick test_pns_abstaining_predictor_falls_back;
          Alcotest.test_case "engine = oracle" `Quick test_pns_engine_oracle_equivalence;
        ] );
    ]
