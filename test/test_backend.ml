(* Tests for the delay-plane backends: query semantics, dense-backend
   equivalence with the raw-matrix paths on every protocol, lazy
   per-pair determinism, the memo LRU bound, and the
   synthesized-then-densified property harness. *)

module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Euclidean = Tivaware_topology.Euclidean
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Synthesizer = Tivaware_topology.Synthesizer
module Backend = Tivaware_backend.Delay_backend
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Churn = Tivaware_measure.Churn
module Store_ring = Tivaware_store.Ring
module Store_policy = Tivaware_store.Policy
module Scenario = Tivaware_store.Scenario
module System = Tivaware_vivaldi.System
module Ring = Tivaware_meridian.Ring
module Overlay = Tivaware_meridian.Overlay
module Query = Tivaware_meridian.Query
module Online = Tivaware_meridian.Online
module Sim = Tivaware_eventsim.Sim
module Eval = Tivaware_tiv.Eval
module Obs = Tivaware_obs

let checkf = Alcotest.check (Alcotest.float 1e-9)

let qcheck ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Float equality where nan = nan (the matrix contract for missing
   entries). *)
let same_delay a b = a = b || (Float.is_nan a && Float.is_nan b)

let euclidean_matrix seed n =
  Euclidean.uniform_box (Rng.create seed) ~n ~dim:3 ~side_ms:300.

let ds2_model ?(size = 150) seed =
  let data = Datasets.generate ~size ~seed Datasets.Ds2 in
  Synthesizer.analyze data.Generator.matrix

(* ------------------------------------------------------------------ *)
(* Query semantics                                                     *)

let test_dense_query () =
  let m = euclidean_matrix 1 30 in
  let b = Backend.dense m in
  Alcotest.(check int) "size" 30 (Backend.size b);
  Alcotest.(check string) "kind" "dense" (Backend.kind_name b);
  for i = 0 to 29 do
    for j = 0 to 29 do
      if i = j then checkf "diagonal" 0. (Backend.query b i j)
      else
        Alcotest.(check bool) "matches matrix" true
          (same_delay (Backend.query b i j) (Matrix.get m i j))
    done
  done;
  Alcotest.(check bool) "out of range raises" true
    (match Backend.query b 0 30 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_sparse_overrides () =
  let m = euclidean_matrix 2 10 in
  let s = Backend.sparse ~base:(Backend.dense m) ~size:10 () in
  (* Fall-through to the base. *)
  checkf "base shows through" (Matrix.get m 1 2) (Backend.query s 1 2);
  Backend.set s 1 2 7.5;
  checkf "override wins" 7.5 (Backend.query s 1 2);
  checkf "symmetric" 7.5 (Backend.query s 2 1);
  Alcotest.(check int) "one edge materialized" 1 (Backend.materialized s);
  Backend.set s 1 2 nan;
  checkf "nan removes the override" (Matrix.get m 1 2) (Backend.query s 1 2);
  (* Without a base, absent pairs are unmeasurable. *)
  let bare = Backend.sparse ~size:5 () in
  Alcotest.(check bool) "no base = nan" true
    (Float.is_nan (Backend.query bare 0 1));
  Backend.set bare 0 1 3.;
  checkf "explicit edge" 3. (Backend.query bare 0 1);
  Alcotest.(check bool) "set on dense raises" true
    (match Backend.set (Backend.dense m) 0 1 1. with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "diagonal set raises" true
    (match Backend.set bare 2 2 1. with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "base size mismatch raises" true
    (match Backend.sparse ~base:(Backend.dense m) ~size:11 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_densify_roundtrip () =
  let m = euclidean_matrix 3 25 in
  let d = Backend.densify (Backend.dense m) in
  let same = ref true in
  Matrix.iter_edges m (fun i j v ->
      if not (same_delay (Matrix.get d i j) v) then same := false);
  Alcotest.(check bool) "densify (dense m) = m" true !same

let test_neighbors_sampled () =
  let m = euclidean_matrix 4 40 in
  let b = Backend.dense m in
  let picks = Backend.neighbors_sampled b (Rng.create 5) 7 ~k:10 in
  Alcotest.(check int) "k samples" 10 (Array.length picks);
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (j, d) ->
      Alcotest.(check bool) "never self" true (j <> 7);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen j);
      Hashtbl.replace seen j ();
      checkf "delay matches query" (Backend.query b 7 j) d)
    picks;
  (* k capped at size - 1. *)
  Alcotest.(check int) "capped at n-1" 39
    (Array.length (Backend.neighbors_sampled b (Rng.create 6) 0 ~k:500));
  match Backend.nearest_sampled b (Rng.create 7) 3 ~k:39 with
  | None -> Alcotest.fail "expected a nearest node on a complete space"
  | Some (j, d) ->
    checkf "nearest is the row minimum" d
      (snd (Option.get (Matrix.nearest_neighbor m 3)));
    ignore j

let test_oracle_recovery () =
  let m = euclidean_matrix 8 20 in
  (* Dense: the oracle is the historical matrix oracle, and recovery
     re-wraps the same matrix. *)
  let dense = Backend.dense m in
  let e = Backend.engine dense in
  Alcotest.(check bool) "dense engine keeps matrix_exn" true
    (Engine.matrix_exn e == m);
  Alcotest.(check bool) "recovered backend is dense" true
    (Backend.kind_name (Backend.of_engine e) = "dense");
  (* Lazy: the extension tag hands back the very same backend. *)
  let lb = Backend.lazy_synth ~seed:9 ~size:50 (ds2_model 10) in
  Alcotest.(check bool) "lazy backend recovered identically" true
    (Backend.of_engine (Backend.engine lb) == lb)

(* ------------------------------------------------------------------ *)
(* Dense backend == raw matrix, protocol by protocol                   *)

let test_equiv_vivaldi () =
  let m = euclidean_matrix 20 40 in
  let raw = System.create (Rng.create 21) m in
  let via =
    System.create_with_engine (Rng.create 21)
      (Backend.engine (Backend.dense m))
  in
  System.run raw ~rounds:15;
  System.run via ~rounds:15;
  for i = 0 to 39 do
    let a = System.coord raw i and b = System.coord via i in
    Array.iteri (fun d x -> checkf "coordinate component" x b.(d)) a
  done

let ring_cfg = Ring.default_config

let same_rings a b nodes =
  Array.iter
    (fun node ->
      for i = 1 to ring_cfg.Ring.rings do
        let ma = Overlay.ring_members a node i
        and mb = Overlay.ring_members b node i in
        Alcotest.(check int) "ring population" (List.length ma)
          (List.length mb);
        List.iter2
          (fun x y ->
            Alcotest.(check int) "member id" x.Overlay.id y.Overlay.id;
            checkf "member delay" x.Overlay.delay y.Overlay.delay)
          ma mb
      done)
    nodes

let test_equiv_meridian_rings () =
  let m = euclidean_matrix 22 60 in
  let nodes = Rng.sample_indices (Rng.create 23) ~n:60 ~k:30 in
  let raw = Overlay.build (Rng.create 24) m ring_cfg ~meridian_nodes:nodes in
  let via =
    Overlay.build_backend (Rng.create 24) (Backend.dense m) ring_cfg
      ~meridian_nodes:nodes
  in
  same_rings raw via nodes;
  (* A budget covering every participant keeps the historical shuffle. *)
  let budgeted =
    Overlay.build_backend ~candidate_budget:30 (Rng.create 24)
      (Backend.dense m) ring_cfg ~meridian_nodes:nodes
  in
  same_rings raw budgeted nodes

let test_equiv_meridian_closest () =
  let m = euclidean_matrix 25 50 in
  let nodes = Rng.sample_indices (Rng.create 26) ~n:50 ~k:25 in
  let overlay = Overlay.build (Rng.create 27) m ring_cfg ~meridian_nodes:nodes in
  let engine = Backend.engine (Backend.dense m) in
  Array.to_list (Rng.permutation (Rng.create 28) 50)
  |> List.iter (fun target ->
         if
           (not (Overlay.is_meridian overlay target))
           && Matrix.known m nodes.(0) target
         then begin
           let raw = Query.closest overlay m ~start:nodes.(0) ~target in
           let via =
             Query.closest_engine overlay engine ~start:nodes.(0) ~target
           in
           Alcotest.(check int) "chosen" raw.Query.chosen via.Query.chosen;
           checkf "chosen delay" raw.Query.chosen_delay via.Query.chosen_delay;
           Alcotest.(check int) "probes" raw.Query.probes via.Query.probes;
           Alcotest.(check int) "hops" raw.Query.hops via.Query.hops
         end)

let test_equiv_meridian_online () =
  let m = euclidean_matrix 29 50 in
  let nodes = Rng.sample_indices (Rng.create 30) ~n:50 ~k:25 in
  let overlay = Overlay.build (Rng.create 31) m ring_cfg ~meridian_nodes:nodes in
  let client, target =
    match
      Array.to_list (Rng.permutation (Rng.create 32) 50)
      |> List.filter (fun i -> not (Overlay.is_meridian overlay i))
    with
    | c :: t :: _ -> (c, t)
    | _ -> Alcotest.fail "expected two non-members"
  in
  let raw =
    Online.closest (Sim.create ()) overlay m ~client ~start:nodes.(0) ~target
  in
  let sim = Sim.create () in
  let engine = Backend.engine (Backend.dense m) in
  Online.attach sim engine;
  let via =
    Online.closest_engine sim overlay engine ~client ~start:nodes.(0) ~target
  in
  Alcotest.(check int) "chosen" raw.Online.query.Query.chosen
    via.Online.query.Query.chosen;
  Alcotest.(check int) "probes" raw.Online.query.Query.probes
    via.Online.query.Query.probes;
  checkf "latency" raw.Online.latency via.Online.latency

let test_equiv_alert () =
  let data = Datasets.generate ~size:60 ~seed:33 Datasets.Ds2 in
  let m = data.Generator.matrix in
  let severity = Tivaware_tiv.Severity.all m in
  (* A deliberately shrunk prediction so some thresholds fire. *)
  let predicted i j = 0.5 *. Matrix.get m i j in
  let run engine =
    Eval.evaluate_engine ~engine ~predicted ~severity ~worst_fraction:0.1
      ~thresholds:Eval.default_thresholds
  in
  let raw = run (Engine.of_matrix m) in
  let via = run (Backend.engine (Backend.dense m)) in
  List.iter2
    (fun (a : Eval.point) (b : Eval.point) ->
      checkf "threshold" a.Eval.threshold b.Eval.threshold;
      Alcotest.(check int) "alerts" a.Eval.alerts b.Eval.alerts;
      checkf "accuracy" a.Eval.accuracy b.Eval.accuracy;
      checkf "recall" a.Eval.recall b.Eval.recall)
    raw via

(* ------------------------------------------------------------------ *)
(* Lazy backend                                                        *)

let test_lazy_determinism () =
  let model = ds2_model 40 in
  let b = Backend.lazy_synth ~seed:41 ~size:200 model in
  (* Same pair twice — no memo, so both calls re-synthesize. *)
  for _ = 1 to 3 do
    Alcotest.(check bool) "stable across repeated queries" true
      (same_delay (Backend.query b 17 93) (Backend.query b 17 93))
  done;
  Alcotest.(check bool) "symmetric" true
    (same_delay (Backend.query b 17 93) (Backend.query b 93 17));
  (* Two backends, same seed, opposite query orders. *)
  let b1 = Backend.lazy_synth ~seed:41 ~size:200 model in
  let b2 = Backend.lazy_synth ~seed:41 ~size:200 model in
  let pairs =
    Array.init 500 (fun k ->
        let rng = Rng.create (1000 + k) in
        let i = Rng.int rng 200 in
        let j = (i + 1 + Rng.int rng 199) mod 200 in
        (i, j))
  in
  let forward = Array.map (fun (i, j) -> Backend.query b1 i j) pairs in
  let backward =
    Array.init (Array.length pairs) (fun k ->
        let i, j = pairs.(Array.length pairs - 1 - k) in
        Backend.query b2 i j)
  in
  Array.iteri
    (fun k d ->
      Alcotest.(check bool) "order independent" true
        (same_delay d backward.(Array.length pairs - 1 - k)))
    forward;
  (* A different seed really is a different space. *)
  let other = Backend.lazy_synth ~seed:42 ~size:200 model in
  let differs = ref false in
  Array.iter
    (fun (i, j) ->
      let a = Backend.query b1 i j and b = Backend.query other i j in
      if (not (same_delay a b)) && not (Float.is_nan a || Float.is_nan b) then
        differs := true)
    pairs;
  Alcotest.(check bool) "different seed differs" true !differs

let test_lazy_labels_match_eager () =
  (* The lazy bucket assignment consumes the seed exactly like the
     eager synthesizer's assignment pass, so cluster labels agree. *)
  let model = ds2_model 43 in
  let b = Backend.lazy_synth ~seed:44 ~size:300 model in
  let _, eager_labels =
    Synthesizer.synthesize_with_clusters (Rng.create 44) model ~size:300
  in
  match Backend.labels b with
  | None -> Alcotest.fail "lazy backend must expose labels"
  | Some lazy_labels ->
    Alcotest.(check (array int)) "labels agree with eager synthesis"
      eager_labels lazy_labels

let test_lazy_memo_bound () =
  let model = ds2_model 45 in
  let b = Backend.lazy_synth ~memo:16 ~seed:46 ~size:100 model in
  let reg = Obs.Registry.create () in
  Backend.attach_obs b reg;
  (* Record first-touch values, then hammer many more pairs than the
     memo holds. *)
  let firsts = ref [] in
  for i = 0 to 19 do
    for j = i + 1 to 19 do
      firsts := ((i, j), Backend.query b i j) :: !firsts
    done
  done;
  Alcotest.(check bool)
    (Printf.sprintf "memo bounded (%d <= 16)" (Backend.materialized b))
    true
    (Backend.materialized b <= 16);
  (* Every value survives eviction and recomputation. *)
  List.iter
    (fun ((i, j), d) ->
      Alcotest.(check bool) "evicted pair recomputes identically" true
        (same_delay d (Backend.query b i j)))
    !firsts;
  (* A memoized backend equals a memo-less one everywhere. *)
  let plain = Backend.lazy_synth ~seed:46 ~size:100 model in
  List.iter
    (fun ((i, j), d) ->
      Alcotest.(check bool) "memo never changes values" true
        (same_delay d (Backend.query plain i j)))
    !firsts

let test_lazy_validation () =
  let model = ds2_model 47 in
  let raises f =
    match f () with exception Invalid_argument _ -> true | _ -> false
  in
  Alcotest.(check bool) "size < 2" true
    (raises (fun () -> Backend.lazy_synth ~seed:1 ~size:1 model));
  Alcotest.(check bool) "jitter out of range" true
    (raises (fun () -> Backend.lazy_synth ~jitter:1. ~seed:1 ~size:10 model));
  Alcotest.(check bool) "memo < 1" true
    (raises (fun () -> Backend.lazy_synth ~memo:0 ~seed:1 ~size:10 model))

let test_lazy_instruments () =
  let model = ds2_model 48 in
  let b = Backend.lazy_synth ~memo:64 ~seed:49 ~size:100 model in
  let reg = Obs.Registry.create () in
  Backend.attach_obs b reg;
  let labels = [ ("backend", "lazy") ] in
  ignore (Backend.query b 0 1);
  ignore (Backend.query b 0 1);
  let counter name = Obs.Counter.value (Obs.Registry.counter reg ~labels name) in
  checkf "two queries counted" 2. (counter "backend.queries");
  checkf "one synthesis" 1. (counter "backend.synthesized");
  checkf "one memo hit" 1. (counter "backend.memo_hits")

(* ------------------------------------------------------------------ *)
(* Property harness: synthesized-then-densified matches Lazy_synth     *)

let test_densified_800_matches_lazy () =
  (* An 800-node lazy space densified up front must agree pair-for-pair
     with fresh lazy queries under the same seed — including which
     pairs go missing — regardless of query order or memoization. *)
  let model = ds2_model 50 in
  let seed = 51 and size = 800 in
  let dense = Backend.densify (Backend.lazy_synth ~seed ~size model) in
  let b = Backend.lazy_synth ~memo:4096 ~seed ~size model in
  let mismatches = ref 0 in
  (* Scan in reverse row order so the query order differs from the
     densify pass. *)
  for i = size - 1 downto 0 do
    for j = size - 1 downto i + 1 do
      if not (same_delay (Matrix.get dense i j) (Backend.query b i j)) then
        incr mismatches
    done
  done;
  Alcotest.(check int) "pair-for-pair equal" 0 !mismatches

let pure_model = lazy (ds2_model 52)

let prop_lazy_pair_pure =
  qcheck ~count:100 "a pair's delay is a pure function of (seed, i, j)"
    QCheck2.Gen.(triple (int_range 0 1_000_000) (int_range 0 99) (int_range 0 99))
    (fun (seed, i, j) ->
      let model = Lazy.force pure_model in
      i = j
      ||
      let a = Backend.query (Backend.lazy_synth ~seed ~size:100 model) i j in
      let b = Backend.query (Backend.lazy_synth ~seed ~size:100 model) j i in
      same_delay a b)

(* ------------------------------------------------------------------ *)
(* Dense == lazy-densified equivalence for the backend-parameterized
   protocol drivers: the same delay answers must grow the same Chord
   overlay and multicast tree, query for query, whichever backend
   representation serves them. *)

module Chord = Tivaware_dht.Chord
module Multicast = Tivaware_overlay.Multicast

let lazy_and_densified seed =
  let model = ds2_model seed in
  let lz = Backend.lazy_synth ~seed ~size:120 model in
  (lz, Backend.dense (Backend.densify lz))

let test_equiv_chord () =
  let lz, dn = lazy_and_densified 31 in
  let ov_l = Chord.build_backend lz and ov_d = Chord.build_backend dn in
  for node = 0 to Backend.size lz - 1 do
    Alcotest.(check int) "successor" (Chord.successor ov_d node)
      (Chord.successor ov_l node);
    Alcotest.(check (array int)) "fingers"
      (Array.of_list (List.sort compare (Array.to_list (Chord.fingers ov_d node))))
      (Array.of_list (List.sort compare (Array.to_list (Chord.fingers ov_l node))))
  done;
  let rng = Rng.create 5 in
  for _ = 1 to 200 do
    let source = Rng.int rng (Backend.size lz) in
    let key = Rng.int rng 4096 in
    let rl = Chord.lookup_backend ov_l lz ~source ~key in
    let rd = Chord.lookup_backend ov_d dn ~source ~key in
    Alcotest.(check int) "hops" rd.Chord.hops rl.Chord.hops;
    Alcotest.(check int) "owner" rd.Chord.owner rl.Chord.owner;
    checkf "latency" rd.Chord.latency rl.Chord.latency;
    Alcotest.(check (list int)) "route" rd.Chord.route rl.Chord.route
  done

let test_equiv_multicast () =
  let lz, dn = lazy_and_densified 47 in
  let n = Backend.size lz in
  let join_order = Rng.permutation (Rng.create 9) n in
  let t_l = Multicast.build_backend lz ~join_order in
  let t_d = Multicast.build_backend dn ~join_order in
  let parents t = List.map (fun m -> (m, Multicast.parent t m)) (Multicast.members t) in
  Alcotest.(check (list (pair int (option int)))) "built parents equal"
    (parents t_d) (parents t_l);
  let sw_l = Multicast.refresh_backend t_l (Rng.create 3) lz in
  let sw_d = Multicast.refresh_backend t_d (Rng.create 3) dn in
  Alcotest.(check int) "refresh switches equal" sw_d sw_l;
  Alcotest.(check (list (pair int (option int)))) "refreshed parents equal"
    (parents t_d) (parents t_l);
  let m_l = Multicast.evaluate_backend t_l lz in
  let m_d = Multicast.evaluate_backend t_d dn in
  Alcotest.(check int) "members" m_d.Multicast.members m_l.Multicast.members;
  checkf "mean edge" m_d.Multicast.mean_edge_ms m_l.Multicast.mean_edge_ms;
  checkf "median stretch" m_d.Multicast.median_stretch m_l.Multicast.median_stretch;
  checkf "p90 stretch" m_d.Multicast.p90_stretch m_l.Multicast.p90_stretch;
  Alcotest.(check int) "max depth" m_d.Multicast.max_depth m_l.Multicast.max_depth;
  Alcotest.(check int) "max fanout" m_d.Multicast.max_fanout m_l.Multicast.max_fanout

(* A lazy store scenario, densified, replays bit-identically: same
   device placements, same per-read policy decisions, same repair
   trace — for a probing policy and for the alert-aware one. *)
let test_equiv_store () =
  let lz, dn = lazy_and_densified 53 in
  let run backend policy_of =
    let engine =
      Backend.engine
        ~config:
          {
            Engine.fault = { Fault.default with Fault.loss = 0.05 };
            profile = None;
            churn = Some { Churn.fraction = 0.2; mean_up = 60.; mean_down = 12.; seed = 77 };
            dynamics = None;
            budget = None;
            cache_ttl = None;
            cache_capacity = None;
            charge_time = false;
            seed = 501;
          }
        backend
    in
    let config =
      {
        Scenario.default_config with
        Scenario.devices = 16;
        part_power = 5;
        replicas = 3;
        objects = 64;
        reads = 150;
        duration = 90.;
        repair_interval = 10.;
        seed = 19;
      }
    in
    let sc =
      Scenario.create ~config ~policy:(policy_of backend) ~backend ~engine ()
    in
    let trace = ref [] and rtrace = ref [] in
    let result =
      Scenario.run
        ~trace:(fun o -> trace := o :: !trace)
        ~repair_trace:(fun o -> rtrace := o :: !rtrace)
        sc
    in
    let ring = Scenario.ring sc in
    let placements =
      Array.init (Store_ring.parts ring) (Store_ring.assignment ring)
    in
    (placements, List.rev !trace, List.rev !rtrace, result)
  in
  let arm policy_of =
    let pl, tl, rl, resl = run lz policy_of in
    let pd, td, rd, resd = run dn policy_of in
    Alcotest.(check bool) "placements equal" true (pl = pd);
    Alcotest.(check int) "same read count" (List.length td) (List.length tl);
    Alcotest.(check bool) "per-read decisions equal" true (tl = td);
    Alcotest.(check bool) "repair traces equal" true (rl = rd);
    Alcotest.(check bool) "results equal" true (resl = resd)
  in
  arm (fun _ -> Store_policy.naive ());
  arm (fun backend ->
      Store_policy.alert (fun i j -> 0.9 *. Backend.query backend i j))

let () =
  Alcotest.run "backend"
    [
      ( "query",
        [
          Alcotest.test_case "dense query" `Quick test_dense_query;
          Alcotest.test_case "sparse overrides" `Quick test_sparse_overrides;
          Alcotest.test_case "densify roundtrip" `Quick test_densify_roundtrip;
          Alcotest.test_case "neighbors sampled" `Quick test_neighbors_sampled;
          Alcotest.test_case "oracle recovery" `Quick test_oracle_recovery;
        ] );
      ( "dense_equivalence",
        [
          Alcotest.test_case "vivaldi coordinates" `Quick test_equiv_vivaldi;
          Alcotest.test_case "meridian rings" `Quick test_equiv_meridian_rings;
          Alcotest.test_case "meridian closest" `Quick test_equiv_meridian_closest;
          Alcotest.test_case "meridian online" `Quick test_equiv_meridian_online;
          Alcotest.test_case "tiv alert" `Quick test_equiv_alert;
          Alcotest.test_case "chord" `Quick test_equiv_chord;
          Alcotest.test_case "multicast" `Quick test_equiv_multicast;
          Alcotest.test_case "store" `Quick test_equiv_store;
        ] );
      ( "lazy",
        [
          Alcotest.test_case "determinism" `Quick test_lazy_determinism;
          Alcotest.test_case "labels match eager" `Quick test_lazy_labels_match_eager;
          Alcotest.test_case "memo bound" `Quick test_lazy_memo_bound;
          Alcotest.test_case "validation" `Quick test_lazy_validation;
          Alcotest.test_case "instruments" `Quick test_lazy_instruments;
        ] );
      ( "property",
        [
          Alcotest.test_case "densified 800 matches lazy" `Slow
            test_densified_800_matches_lazy;
          prop_lazy_pair_pure;
        ] );
    ]
