(* Tests for the overlay multicast library. *)

module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Euclidean = Tivaware_topology.Euclidean
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Multicast = Tivaware_overlay.Multicast

let qcheck ?(count = 30) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let euclidean_matrix seed n =
  Euclidean.uniform_box (Rng.create seed) ~n ~dim:3 ~side_ms:200.

let oracle m a b = Matrix.get m a b

let build_oracle ?config seed n =
  let m = euclidean_matrix seed n in
  let order = Rng.permutation (Rng.create (seed + 1)) n in
  (m, Multicast.build ?config m ~join_order:order ~predict:(oracle m))

(* Walk to the root; returns depth or None on a cycle/corruption. *)
let depth_of t node =
  let rec ascend cur steps =
    if steps < 0 then None
    else if cur = Multicast.root t then Some 0
    else begin
      match Multicast.parent t cur with
      | None -> None
      | Some p -> Option.map (fun d -> d + 1) (ascend p (steps - 1))
    end
  in
  ascend node 10_000

let check_tree_invariants t n =
  let members = Multicast.members t in
  (* Every member reaches the root without cycles. *)
  List.iter
    (fun node ->
      match depth_of t node with
      | Some _ -> ()
      | None -> Alcotest.failf "node %d cannot reach the root" node)
    members;
  (* Degree counters match actual children. *)
  let actual = Array.make n 0 in
  List.iter
    (fun node ->
      match Multicast.parent t node with
      | Some p -> actual.(p) <- actual.(p) + 1
      | None -> ())
    members;
  List.iter
    (fun node ->
      Alcotest.(check int)
        (Printf.sprintf "degree counter of %d" node)
        actual.(node) (Multicast.children_count t node))
    members

let test_build_everyone_joins () =
  let _, t = build_oracle 1 60 in
  Alcotest.(check int) "all nodes join a complete matrix" 60
    (List.length (Multicast.members t))

let test_build_invariants () =
  let _, t = build_oracle 2 80 in
  check_tree_invariants t 80

let test_degree_cap_respected () =
  let config = { Multicast.default_config with Multicast.max_degree = 2 } in
  let m = euclidean_matrix 3 50 in
  let order = Rng.permutation (Rng.create 4) 50 in
  let t = Multicast.build ~config m ~join_order:order ~predict:(oracle m) in
  List.iter
    (fun node ->
      Alcotest.(check bool) "degree cap" true (Multicast.children_count t node <= 2))
    (Multicast.members t);
  check_tree_invariants t 50

let test_root_properties () =
  let m = euclidean_matrix 5 20 in
  let order = Rng.permutation (Rng.create 6) 20 in
  let t = Multicast.build m ~join_order:order ~predict:(oracle m) in
  Alcotest.(check int) "root is first joiner" order.(0) (Multicast.root t);
  Alcotest.(check bool) "root has no parent" true
    (Multicast.parent t (Multicast.root t) = None)

let test_unjoinable_nodes_left_out () =
  (* A node with no measured edge to anyone cannot join. *)
  let m = Matrix.create 4 in
  Matrix.set m 0 1 10.;
  Matrix.set m 0 2 10.;
  Matrix.set m 1 2 10.;
  (* node 3 fully unmeasured *)
  let t = Multicast.build m ~join_order:[| 0; 1; 2; 3 |] ~predict:(oracle m) in
  Alcotest.(check int) "three members" 3 (List.length (Multicast.members t));
  Alcotest.(check bool) "node 3 out" true (Multicast.parent t 3 = None)

let test_oracle_attaches_nearest () =
  (* With unconstrained degree, each joiner picks its measured-nearest
     earlier member. *)
  let config = { Multicast.default_config with Multicast.max_degree = 1000 } in
  let m = euclidean_matrix 7 30 in
  let order = Rng.permutation (Rng.create 8) 30 in
  let t = Multicast.build ~config m ~join_order:order ~predict:(oracle m) in
  Array.iteri
    (fun idx node ->
      if idx > 0 then begin
        match Multicast.parent t node with
        | None -> Alcotest.fail "should have joined"
        | Some p ->
          let pd = Matrix.get m node p in
          for k = 0 to idx - 1 do
            Alcotest.(check bool) "parent is the nearest earlier member" true
              (Matrix.get m node order.(k) >= pd -. 1e-9)
          done
      end)
    order

let test_evaluate_fields () =
  let m, t = build_oracle 9 40 in
  let metrics = Multicast.evaluate t m in
  Alcotest.(check int) "members" 40 metrics.Multicast.members;
  Alcotest.(check bool) "stretch >= 1" true (metrics.Multicast.median_stretch >= 1. -. 1e-9);
  Alcotest.(check bool) "p90 >= median" true
    (metrics.Multicast.p90_stretch >= metrics.Multicast.median_stretch);
  Alcotest.(check bool) "fanout within cap" true
    (metrics.Multicast.max_fanout <= Multicast.default_config.Multicast.max_degree)

let test_refresh_keeps_invariants () =
  let data = Datasets.generate ~size:100 ~seed:10 Datasets.Ds2 in
  let m = data.Generator.matrix in
  let order = Rng.permutation (Rng.create 11) 100 in
  let t = Multicast.build m ~join_order:order ~predict:(oracle m) in
  let rng = Rng.create 12 in
  for _ = 1 to 5 do
    ignore (Multicast.refresh t rng m ~predict:(oracle m))
  done;
  check_tree_invariants t 100

let test_refresh_improves_bad_tree () =
  (* Build the tree with an adversarial predictor (farthest member),
     then refresh with the oracle: stretch must improve. *)
  let data = Datasets.generate ~size:120 ~seed:13 Datasets.Ds2 in
  let m = data.Generator.matrix in
  let order = Rng.permutation (Rng.create 14) 120 in
  let anti a b =
    let d = Matrix.get m a b in
    if Float.is_nan d then nan else -.d
  in
  let t = Multicast.build m ~join_order:order ~predict:anti in
  let before = (Multicast.evaluate t m).Multicast.median_stretch in
  let rng = Rng.create 15 in
  for _ = 1 to 5 do
    ignore (Multicast.refresh t rng m ~predict:(oracle m))
  done;
  let after = (Multicast.evaluate t m).Multicast.median_stretch in
  Alcotest.(check bool)
    (Printf.sprintf "stretch improved (%.2f -> %.2f)" before after)
    true (after < before);
  check_tree_invariants t 120

let test_engine_build_refresh_equivalence () =
  (* Build and refresh routed through a default-config measurement
     engine must be bit-for-bit identical to the oracle-predictor path:
     same parents, same metrics, after the same refresh schedule. *)
  let module Engine = Tivaware_measure.Engine in
  let data = Datasets.generate ~size:100 ~seed:16 Datasets.Ds2 in
  let m = data.Generator.matrix in
  let order = Rng.permutation (Rng.create 17) 100 in
  let a = Multicast.build m ~join_order:order ~predict:(oracle m) in
  let engine = Engine.of_matrix m in
  let b = Multicast.build_engine engine ~join_order:order in
  let same_trees x y =
    Alcotest.(check (list int)) "same members" (Multicast.members x)
      (Multicast.members y);
    List.iter
      (fun node ->
        Alcotest.(check (option int))
          (Printf.sprintf "same parent of %d" node)
          (Multicast.parent x node) (Multicast.parent y node))
      (Multicast.members x);
    let mx = Multicast.evaluate x m and my = Multicast.evaluate y m in
    Alcotest.(check (float 0.)) "same median stretch"
      mx.Multicast.median_stretch my.Multicast.median_stretch;
    Alcotest.(check (float 0.)) "same p90 stretch" mx.Multicast.p90_stretch
      my.Multicast.p90_stretch
  in
  same_trees a b;
  (* Identical rng seeds drive identical refresh decisions. *)
  let ra = Rng.create 18 and rb = Rng.create 18 in
  for _ = 1 to 5 do
    ignore (Multicast.refresh a ra m ~predict:(oracle m));
    ignore (Multicast.refresh_engine b rb engine)
  done;
  same_trees a b;
  let st = Engine.stats engine in
  Alcotest.(check bool) "engine probed" true
    (st.Tivaware_measure.Probe_stats.requests > 0);
  Alcotest.(check (float 0.)) "clock untouched" 0. (Engine.now engine)

let prop_build_invariants_random =
  qcheck "random worlds keep tree invariants"
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let n = 30 + (seed mod 20) in
      let m = euclidean_matrix seed n in
      let order = Rng.permutation (Rng.create (seed + 1)) n in
      let t = Multicast.build m ~join_order:order ~predict:(oracle m) in
      let ok = ref true in
      List.iter
        (fun node -> if depth_of t node = None then ok := false)
        (Multicast.members t);
      !ok)

let () =
  Alcotest.run "overlay"
    [
      ( "multicast",
        [
          Alcotest.test_case "everyone joins" `Quick test_build_everyone_joins;
          Alcotest.test_case "build invariants" `Quick test_build_invariants;
          Alcotest.test_case "degree cap" `Quick test_degree_cap_respected;
          Alcotest.test_case "root properties" `Quick test_root_properties;
          Alcotest.test_case "unjoinable nodes" `Quick test_unjoinable_nodes_left_out;
          Alcotest.test_case "oracle attaches nearest" `Quick test_oracle_attaches_nearest;
          Alcotest.test_case "evaluate fields" `Quick test_evaluate_fields;
          Alcotest.test_case "refresh keeps invariants" `Quick test_refresh_keeps_invariants;
          Alcotest.test_case "refresh improves bad tree" `Quick test_refresh_improves_bad_tree;
          Alcotest.test_case "engine = oracle build/refresh" `Quick
            test_engine_build_refresh_equivalence;
          prop_build_invariants_random;
        ] );
    ]
