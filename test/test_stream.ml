(* lib/stream: the P2P live-streaming swarm.

   The contracts under test (see DESIGN.md, "Streaming"):

   - On a churn-free world with a locality-aware policy every
     (member, chunk) pair lands inside the playback deadline: the
     push plane alone sustains the stream, and nothing is lost,
     duplicated to death, or silently dropped.
   - A run is a pure function of (config, policy, backend, engine
     config): replaying the same seeds yields the identical result
     record, stretch for stretch — the property the CI determinism
     gate checks end to end through `tivlab stream --metrics-out`.
   - Policy probes ride the engine like any other measurement: the
     alert policy's verification probes are accounted under the
     ["stream"] label, repair re-grafting under ["stream_repair"],
     and the stream.* observability counters agree with the result
     record.
   - The locality spectrum orders as the paper says it should: the
     alert tree's edges are shorter than the naive tree's, and under
     churn the naive swarm misses at least as many deadlines.
   - An arbiter carve starves the repair plane deterministically:
     denied passes are counted, not silently skipped.

   Like test_measure_properties, the suite reads TIVAWARE_PROP_SEED so
   the CI matrix (seed band 16-18) re-runs it under distinct seeds;
   any failure stays reproducible under its seed. *)

module Rng = Tivaware_util.Rng
module Datasets = Tivaware_topology.Datasets
module Generator = Tivaware_topology.Generator
module Backend = Tivaware_backend.Delay_backend
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Churn = Tivaware_measure.Churn
module Dynamics = Tivaware_measure.Dynamics
module Arbiter = Tivaware_measure.Arbiter
module Probe_stats = Tivaware_measure.Probe_stats
module Obs = Tivaware_obs
module Multicast = Tivaware_overlay.Multicast
module Select = Tivaware_stream.Select
module Swarm = Tivaware_stream.Swarm

let prop_seed =
  match Sys.getenv_opt "TIVAWARE_PROP_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 0)
  | None -> 0

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 0.))

let n = 60

let matrix =
  lazy (Datasets.generate ~size:n ~seed:2007 Datasets.Ds2).Generator.matrix

let backend = lazy (Backend.dense (Lazy.force matrix))

let engine_config ?churn ?dynamics seed =
  {
    Engine.fault = Fault.default;
    profile = None;
    churn;
    dynamics;
    budget = None;
    cache_ttl = None;
    cache_capacity = None;
    charge_time = false;
    seed;
  }

let make_engine ?churn ?dynamics ~seed () =
  Backend.engine ~config:(engine_config ?churn ?dynamics seed) (Lazy.force backend)

let stream_churn seed = { Churn.default with Churn.fraction = 0.2; seed }

(* Small but real: 24 members, 75 chunks, a pull plane and a repair
   plane, finishing well under a second. *)
let small_config =
  { Swarm.default_config with Swarm.members = 24; duration = 30.; seed = 16 }

let true_delay i j = Backend.query (Lazy.force backend) i j

(* ------------------------------------------------------------------ *)
(* Churn-free liveness: push alone sustains the stream                 *)

let test_no_churn_full_delivery () =
  let engine = make_engine ~seed:(100 + prop_seed) () in
  let sw =
    Swarm.create ~config:small_config
      ~select:(Select.coordinate true_delay)
      ~backend:(Lazy.force backend) ~engine ()
  in
  let r = Swarm.run sw in
  checki "everyone joined" small_config.Swarm.members r.Swarm.joined;
  checki "every pair judged on time"
    ((small_config.Swarm.members - 1) * r.Swarm.chunks)
    r.Swarm.on_time;
  checki "no misses" 0 r.Swarm.missed;
  checkf "miss rate zero" 0. r.Swarm.miss_rate;
  checki "no member down at a deadline" 0 r.Swarm.down_at_deadline;
  checki "no transfer failed on a complete matrix" 0 r.Swarm.transfer_failures;
  checki "no delivery found a dead receiver" 0 r.Swarm.lost_down;
  checki "nothing detached without churn" 0 r.Swarm.repair.Swarm.detached;
  (* NOT >= 1: in a TIV delay space a two-hop tree path can undercut
     the direct edge — detouring beating the triangle inequality is
     the phenomenon the whole repo is about. *)
  checkb "every stretch is positive and finite" true
    (Array.for_all (fun s -> Float.is_finite s && s > 0.) r.Swarm.stretches);
  checki "a stretch sample per on-time delivery" r.Swarm.on_time
    (Array.length r.Swarm.stretches)

(* ------------------------------------------------------------------ *)
(* Determinism: same seeds, same world -> identical result record      *)

(* Heavy churn with short lifetimes: in a 30 s run with half the
   population churning on ~10 s up / ~30 s down episodes, some member
   reliably fails mid-broadcast, so the repair plane has real work
   under every seed. *)
let heavy_churn seed =
  { Churn.fraction = 0.5; mean_up = 10.; mean_down = 30.; seed }

let churny_run () =
  let engine =
    make_engine
      ~churn:(heavy_churn (1 + prop_seed))
      ~dynamics:
        {
          Dynamics.default with
          Dynamics.route_flap = Some Dynamics.default_route_flap;
          seed = 1 + prop_seed;
        }
      ~seed:(1 + prop_seed) ()
  in
  let sw =
    Swarm.create
      ~config:{ small_config with Swarm.seed = 16 + prop_seed }
      ~select:(Select.alert true_delay)
      ~backend:(Lazy.force backend) ~engine ()
  in
  (Swarm.run sw, engine)

let test_deterministic_replay () =
  let a, _ = churny_run () in
  let b, _ = churny_run () in
  checki "on_time replays" a.Swarm.on_time b.Swarm.on_time;
  checki "missed replays" a.Swarm.missed b.Swarm.missed;
  checki "down_at_deadline replays" a.Swarm.down_at_deadline
    b.Swarm.down_at_deadline;
  checki "deliveries replay" a.Swarm.deliveries b.Swarm.deliveries;
  checki "duplicates replay" a.Swarm.duplicates b.Swarm.duplicates;
  checki "pull traffic replays" a.Swarm.pull_requests b.Swarm.pull_requests;
  checki "repair passes replay" a.Swarm.repair.Swarm.passes
    b.Swarm.repair.Swarm.passes;
  checki "repair re-grafts replay" a.Swarm.repair.Swarm.reattached
    b.Swarm.repair.Swarm.reattached;
  Alcotest.(check (array (float 0.)))
    "every stretch sample replays" a.Swarm.stretches b.Swarm.stretches

(* ------------------------------------------------------------------ *)
(* Probe accounting and the stream.* observability series              *)

let test_probe_accounting () =
  let r, engine = churny_run () in
  let stats = Engine.stats engine in
  checkb "alert verification probes charged under the stream label" true
    (Probe_stats.label_count stats "stream" > 0);
  checkb "repair ran" true (r.Swarm.repair.Swarm.passes > 0);
  checkb "churn gave repair real work" true
    (r.Swarm.repair.Swarm.detached + r.Swarm.repair.Swarm.rejoined > 0);
  checkb "repair probes charged under the stream_repair label" true
    (Probe_stats.label_count stats "stream_repair" > 0);
  let reg = Engine.obs engine in
  let counter name = int_of_float (Obs.Counter.value (Obs.Registry.counter reg name)) in
  checki "stream.chunks_emitted = chunks" r.Swarm.chunks
    (counter "stream.chunks_emitted");
  checki "stream.deliveries agrees" r.Swarm.deliveries
    (counter "stream.deliveries");
  checki "stream.missed agrees" r.Swarm.missed (counter "stream.missed");
  checki "stream.on_time agrees" r.Swarm.on_time (counter "stream.on_time");
  checki "receive-latency histogram saw every on-time delivery"
    r.Swarm.on_time
    (Obs.Histogram.count
       (Obs.Registry.histogram reg
          ~edges:
            [| 10.; 20.; 50.; 100.; 200.; 500.; 1000.; 2000.; 5000.; 10000. |]
          "stream.receive_ms"))

(* ------------------------------------------------------------------ *)
(* Locality ordering: alert < naive on edges; naive misses more        *)

let run_policy ?churn ?(config = small_config) select =
  let engine =
    make_engine
      ?churn
      ~seed:(2 + prop_seed) ()
  in
  let sw =
    Swarm.create
      ~config:{ config with Swarm.seed = 16 + prop_seed }
      ~select ~backend:(Lazy.force backend) ~engine ()
  in
  Swarm.run sw

let test_locality_ordering () =
  (* Churn-free: the trees are a pure function of the policy, so the
     edge comparison is exact, not statistical. *)
  let naive = run_policy (Select.naive ~seed:(16 + prop_seed)) in
  let alert = run_policy (Select.alert true_delay) in
  checkb "alert tree edges shorter than naive's" true
    (alert.Swarm.tree_metrics.Multicast.mean_edge_ms
    < naive.Swarm.tree_metrics.Multicast.mean_edge_ms);
  (* The application metric follows structurally once the deadline
     binds on path latency: with a tight deadline (still churn-free,
     so this is exact, not churn-sampling luck) the naive tree's long
     random edges overrun where the alert tree's verified short edges
     fit. *)
  let tight = { small_config with Swarm.deadline_ms = 120. } in
  let naive_t = run_policy ~config:tight (Select.naive ~seed:(16 + prop_seed)) in
  let alert_t = run_policy ~config:tight (Select.alert true_delay) in
  checkb
    (Printf.sprintf
       "alert misses fewer tight deadlines (%d) than naive (%d)"
       alert_t.Swarm.missed naive_t.Swarm.missed)
    true
    (alert_t.Swarm.missed < naive_t.Swarm.missed);
  (* Under churn the gap is statistical at this scale — a single 30 s
     skirmish can flip a sub-1% difference — so the guard is one-sided
     with slack: alert must never lose badly. *)
  let churn = stream_churn (2 + prop_seed) in
  let naive_c = run_policy ~churn (Select.naive ~seed:(16 + prop_seed)) in
  let alert_c = run_policy ~churn (Select.alert true_delay) in
  checkb
    (Printf.sprintf "alert miss rate (%.4f) within slack of naive's (%.4f)"
       alert_c.Swarm.miss_rate naive_c.Swarm.miss_rate)
    true
    (alert_c.Swarm.miss_rate <= naive_c.Swarm.miss_rate +. 0.05)

(* ------------------------------------------------------------------ *)
(* Config validation                                                   *)

let test_validate_config () =
  let expect_invalid what config =
    match Swarm.validate_config "test" config with
    | () -> Alcotest.failf "%s must be rejected" what
    | exception Invalid_argument _ -> ()
  in
  Swarm.validate_config "test" Swarm.default_config;
  expect_invalid "one member" { Swarm.default_config with Swarm.members = 1 };
  expect_invalid "zero chunk gap" { Swarm.default_config with Swarm.chunk_ms = 0. };
  expect_invalid "nan deadline" { Swarm.default_config with Swarm.deadline_ms = nan };
  expect_invalid "empty buffer" { Swarm.default_config with Swarm.buffer_chunks = 0 };
  expect_invalid "zero pull interval"
    { Swarm.default_config with Swarm.pull_interval = 0. };
  expect_invalid "negative repair interval"
    { Swarm.default_config with Swarm.repair_interval = -1. };
  expect_invalid "zero degree" { Swarm.default_config with Swarm.max_degree = 0 };
  expect_invalid "zero duration" { Swarm.default_config with Swarm.duration = 0. };
  (match
     Swarm.create
       ~config:{ Swarm.default_config with Swarm.members = n + 1 }
       ~select:(Select.naive ~seed:1)
       ~backend:(Lazy.force backend)
       ~engine:(make_engine ~seed:3 ())
       ()
   with
  | _ -> Alcotest.fail "members > delay-space nodes must be rejected"
  | exception Invalid_argument _ -> ());
  match Select.alert ~threshold:0. true_delay with
  | _ -> Alcotest.fail "non-positive alert threshold must be rejected"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Arbiter carve: a starved repair plane is denied, and counted        *)

let test_arbiter_starves_repair () =
  (* stream_repair's carve is one token refilled at 0.005/s: the first
     pass is admitted, every later one (5 s apart) is refused. *)
  let arbiter =
    Arbiter.create
      (Arbiter.config ~capacity:2. ~rate:0.01
         ~shares:[ ("stream_repair", 0.5); ("stream", 0.5) ])
  in
  let engine = make_engine ~churn:(stream_churn (3 + prop_seed)) ~seed:4 () in
  let sw =
    Swarm.create ~arbiter ~config:small_config
      ~select:(Select.naive ~seed:16)
      ~backend:(Lazy.force backend) ~engine ()
  in
  let r = Swarm.run sw in
  checkb "some passes were admitted" true (r.Swarm.repair.Swarm.passes > 0);
  checkb "the starved carve denied passes" true
    (r.Swarm.repair.Swarm.denied > 0);
  checki "the arbiter agrees with the result record"
    r.Swarm.repair.Swarm.denied
    (Arbiter.denied arbiter "stream_repair");
  checki "denials are observable" r.Swarm.repair.Swarm.denied
    (int_of_float
       (Obs.Counter.value
          (Obs.Registry.counter (Engine.obs engine) "stream.repair_denied")))

let () =
  Alcotest.run "stream"
    [
      ( "swarm",
        [
          Alcotest.test_case "churn-free world misses nothing" `Quick
            test_no_churn_full_delivery;
          Alcotest.test_case "replay is bit-identical" `Quick
            test_deterministic_replay;
          Alcotest.test_case "probes and counters accounted" `Quick
            test_probe_accounting;
          Alcotest.test_case "locality ordering holds" `Quick
            test_locality_ordering;
        ] );
      ( "config",
        [
          Alcotest.test_case "invalid configs rejected" `Quick
            test_validate_config;
        ] );
      ( "arbiter",
        [
          Alcotest.test_case "starved repair plane is denied" `Quick
            test_arbiter_starves_repair;
        ] );
    ]
