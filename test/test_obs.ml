(* Unit tests of the observability subsystem: instrument semantics,
   histogram bucket edges, the JSON printer/parser pair, label
   isolation between planes, and summary determinism. *)

module Counter = Tivaware_obs.Counter
module Gauge = Tivaware_obs.Gauge
module Histogram = Tivaware_obs.Histogram
module Trace = Tivaware_obs.Trace
module Registry = Tivaware_obs.Registry
module Summary = Tivaware_obs.Summary
module Json = Tivaware_obs.Json

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> true
  | _ -> false

(* ---------------------------------------------------------------- *)
(* Counters and gauges                                               *)

let test_counter () =
  let c = Counter.create () in
  Alcotest.(check (float 0.)) "starts at zero" 0. (Counter.value c);
  Counter.incr c;
  Counter.incr c;
  Counter.add c 2.5;
  Alcotest.(check (float 1e-9)) "accumulates" 4.5 (Counter.value c);
  Alcotest.(check bool) "rejects negative" true
    (raises_invalid (fun () -> Counter.add c (-1.)));
  Alcotest.(check bool) "rejects nan" true
    (raises_invalid (fun () -> Counter.add c nan));
  Alcotest.(check bool) "rejects infinity" true
    (raises_invalid (fun () -> Counter.add c infinity));
  Alcotest.(check (float 1e-9)) "unchanged after rejects" 4.5 (Counter.value c)

let test_gauge () =
  let g = Gauge.create () in
  Gauge.set g 3.5;
  Gauge.add g (-5.);
  Alcotest.(check (float 1e-9)) "signed adjustment" (-1.5) (Gauge.value g);
  Alcotest.(check bool) "rejects nan set" true
    (raises_invalid (fun () -> Gauge.set g nan));
  Alcotest.(check bool) "rejects infinite add" true
    (raises_invalid (fun () -> Gauge.add g neg_infinity));
  Gauge.set g 7.;
  Alcotest.(check (float 0.)) "last write wins" 7. (Gauge.value g)

(* ---------------------------------------------------------------- *)
(* Histogram bucket semantics                                        *)

let test_histogram_edges () =
  Alcotest.(check bool) "empty edges rejected" true
    (raises_invalid (fun () -> Histogram.create ~edges:[||]));
  Alcotest.(check bool) "non-increasing rejected" true
    (raises_invalid (fun () -> Histogram.create ~edges:[| 1.; 1. |]));
  Alcotest.(check bool) "non-finite edge rejected" true
    (raises_invalid (fun () -> Histogram.create ~edges:[| 1.; infinity |]));
  let h = Histogram.create ~edges:[| 1.; 5.; 10. |] in
  (* Upper-inclusive binning: an observation equal to an edge lands in
     that edge's bucket, strictly above it in the next. *)
  Histogram.observe h 1.;
  Histogram.observe h 1.0000001;
  Histogram.observe h 5.;
  Histogram.observe h 10.;
  Histogram.observe h 10.5;
  Alcotest.(check (array int)) "upper-inclusive edges" [| 1; 2; 1; 1 |]
    (Histogram.counts h);
  Alcotest.(check int) "overflow included in count" 5 (Histogram.count h)

let test_histogram_special_values () =
  let h = Histogram.create ~edges:[| 1.; 2. |] in
  Histogram.observe h nan;
  Histogram.observe h infinity;
  Histogram.observe h 1.5;
  Alcotest.(check int) "nan dropped" 1 (Histogram.dropped h);
  Alcotest.(check int) "finite + infinite binned" 2 (Histogram.count h);
  Alcotest.(check (array int)) "infinity overflows" [| 0; 1; 1 |]
    (Histogram.counts h);
  (* Sum and mean only see finite mass. *)
  Alcotest.(check (float 1e-9)) "sum skips non-finite" 1.5 (Histogram.sum h);
  Alcotest.(check (float 1e-9)) "mean over binned count" 0.75 (Histogram.mean h)

(* ---------------------------------------------------------------- *)
(* Trace ring                                                        *)

let test_trace_ring () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Trace.record t ~time:(float_of_int i) ~label:"x" (string_of_int i)
  done;
  Alcotest.(check int) "bounded" 3 (Trace.length t);
  Alcotest.(check int) "oldest displaced" 2 (Trace.dropped t);
  Alcotest.(check (list string)) "oldest first" [ "3"; "4"; "5" ]
    (List.map (fun e -> e.Trace.message) (Trace.events t))

(* ---------------------------------------------------------------- *)
(* Registry: label isolation and shape guards                        *)

let test_label_isolation () =
  let reg = Registry.create () in
  let viv = Registry.counter reg ~labels:[ ("plane", "vivaldi") ] "repair.evicted" in
  let mer = Registry.counter reg ~labels:[ ("plane", "meridian") ] "repair.evicted" in
  let bare = Registry.counter reg "repair.evicted" in
  Counter.incr viv;
  Counter.incr viv;
  Counter.incr mer;
  Alcotest.(check (float 0.)) "vivaldi isolated" 2. (Counter.value viv);
  Alcotest.(check (float 0.)) "meridian isolated" 1. (Counter.value mer);
  Alcotest.(check (float 0.)) "unlabelled isolated" 0. (Counter.value bare);
  (* Label order does not matter: same series either way. *)
  let a =
    Registry.counter reg ~labels:[ ("a", "1"); ("b", "2") ] "multi"
  and b =
    Registry.counter reg ~labels:[ ("b", "2"); ("a", "1") ] "multi"
  in
  Counter.incr a;
  Alcotest.(check (float 0.)) "label order canonicalized" 1. (Counter.value b);
  Alcotest.(check string) "series name sorted"
    "multi{a=1,b=2}"
    (Registry.series_name "multi" [ ("b", "2"); ("a", "1") ])

let test_shape_guards () =
  let reg = Registry.create () in
  ignore (Registry.counter reg "m");
  Alcotest.(check bool) "kind change rejected" true
    (raises_invalid (fun () -> Registry.gauge reg "m"));
  ignore (Registry.histogram reg ~edges:[| 1.; 2. |] "h");
  Alcotest.(check bool) "edge change rejected" true
    (raises_invalid (fun () -> Registry.histogram reg ~edges:[| 1.; 3. |] "h"));
  (* Find-or-create: the same instrument comes back. *)
  let c = Registry.counter reg "m" in
  Counter.incr c;
  Alcotest.(check (float 0.)) "same instrument" 1.
    (Counter.value (Registry.counter reg "m"))

(* ---------------------------------------------------------------- *)
(* JSON                                                              *)

let test_json_round_trip () =
  let doc =
    Json.Obj
      [
        ("s", Json.String "a\"b\\c\n\t");
        ("i", Json.Int 42);
        ("f", Json.Float 163.136);
        ("neg", Json.Float (-0.25));
        ("list", Json.List [ Json.Bool true; Json.Null; Json.Int 0 ]);
        ("nested", Json.Obj [ ("x", Json.Float 1e-9) ]);
      ]
  in
  let s = Json.to_string doc in
  Alcotest.(check bool) "parses back" true (Json.of_string s = doc);
  (* Stability: printing the re-parsed value reproduces the text. *)
  Alcotest.(check string) "print/parse/print fixed point" s
    (Json.to_string (Json.of_string s))

let test_json_number () =
  Alcotest.(check bool) "integral float becomes Int" true
    (Json.number 3. = Json.Int 3);
  Alcotest.(check bool) "fractional stays Float" true
    (Json.number 3.5 = Json.Float 3.5);
  Alcotest.(check bool) "nan becomes Null" true (Json.number nan = Json.Null);
  Alcotest.(check bool) "infinity becomes Null" true
    (Json.number infinity = Json.Null);
  (match Json.of_string "{\"a\": [1, 2.5]}" with
  | Json.Obj [ ("a", Json.List [ Json.Int 1; Json.Float 2.5 ]) ] -> ()
  | _ -> Alcotest.fail "parse shapes");
  Alcotest.(check bool) "malformed raises" true
    (match Json.of_string "{\"a\": }" with
    | exception Failure _ -> true
    | _ -> false)

(* ---------------------------------------------------------------- *)
(* Summary determinism                                               *)

(* Two registries fed the same seeded workload must serialize to
   byte-identical summaries — this is what lets CI diff metrics
   snapshots across runs and machines. *)
let build_registry seed =
  let reg = Registry.create () in
  let rng = Tivaware_util.Rng.create seed in
  let c = Registry.counter reg ~labels:[ ("plane", "vivaldi") ] "probes" in
  let h = Registry.histogram reg ~edges:[| 10.; 50.; 100. |] "rtt" in
  let g = Registry.gauge reg "err" in
  for i = 0 to 199 do
    Counter.incr c;
    Histogram.observe h (Tivaware_util.Rng.float rng 150.);
    if i mod 50 = 0 then
      Registry.trace_event reg ~time:(float_of_int i) ~label:"t"
        (Printf.sprintf "tick %d" i)
  done;
  Gauge.set g (Tivaware_util.Rng.float rng 1.);
  reg

let test_summary_determinism () =
  let a = Summary.to_string ~clock:200. (build_registry 7)
  and b = Summary.to_string ~clock:200. (build_registry 7) in
  Alcotest.(check string) "same seed, same bytes" a b;
  let c = Summary.to_string ~clock:200. (build_registry 8) in
  Alcotest.(check bool) "different seed differs" true (a <> c);
  (* The summary itself is valid JSON carrying the schema tag. *)
  match Json.of_string a with
  | Json.Obj fields ->
    Alcotest.(check bool) "schema tag" true
      (List.assoc_opt "schema" fields = Some (Json.String "tivaware.obs/1"));
    Alcotest.(check bool) "has counters" true (List.mem_assoc "counters" fields);
    Alcotest.(check bool) "has histograms" true
      (List.mem_assoc "histograms" fields);
    Alcotest.(check bool) "has trace" true (List.mem_assoc "trace" fields)
  | _ -> Alcotest.fail "summary is not an object"

let test_summary_series_sorted () =
  let reg = Registry.create () in
  (* Register in reverse order; the summary must sort by series name. *)
  ignore (Registry.counter reg "z");
  ignore (Registry.counter reg "a");
  ignore (Registry.counter reg ~labels:[ ("plane", "x") ] "a");
  match Json.member "counters" (Summary.to_json reg) with
  | Some (Json.Obj fields) ->
    Alcotest.(check (list string)) "sorted keys" [ "a"; "a{plane=x}"; "z" ]
      (List.map fst fields)
  | _ -> Alcotest.fail "no counters object"

(* ------------------------------------------------------------------ *)
(* Merge — per-domain registries into one deterministic summary        *)

module Merge = Tivaware_obs.Merge

let test_merge_counters_sum () =
  let a = Registry.create () and b = Registry.create () in
  Counter.add (Registry.counter a "shared") 2.;
  Counter.add (Registry.counter b "shared") 3.5;
  Counter.incr (Registry.counter a "only_a");
  let m = Merge.registries [ a; b ] in
  Alcotest.(check (float 1e-9)) "shared sums" 5.5
    (Counter.value (Registry.counter m "shared"));
  Alcotest.(check (float 1e-9)) "lone series copied" 1.
    (Counter.value (Registry.counter m "only_a"))

let test_merge_gauges_max () =
  let a = Registry.create () and b = Registry.create () in
  Gauge.set (Registry.gauge a "level") 4.;
  Gauge.set (Registry.gauge b "level") 7.;
  let m = Merge.registries [ a; b ] in
  Alcotest.(check (float 1e-9)) "max wins" 7.
    (Gauge.value (Registry.gauge m "level"))

let test_merge_histograms_bucketwise () =
  let edges = [| 1.; 2.; 5. |] in
  let a = Registry.create () and b = Registry.create () in
  let ha = Registry.histogram a ~edges "lat" in
  let hb = Registry.histogram b ~edges "lat" in
  let union = Histogram.create ~edges in
  let xs_a = [ 0.5; 1.5; 9. ] and xs_b = [ 1.5; 3.; 4.; nan ] in
  List.iter (fun x -> Histogram.observe ha x; Histogram.observe union x) xs_a;
  List.iter (fun x -> Histogram.observe hb x; Histogram.observe union x) xs_b;
  let m = Merge.registries [ a; b ] in
  let hm = Registry.histogram m ~edges "lat" in
  Alcotest.(check (array int)) "bucket counts add" (Histogram.counts union)
    (Histogram.counts hm);
  Alcotest.(check int) "dropped adds" 1 (Histogram.dropped hm);
  (* The property the per-domain split rests on: quantiles of the merge
     equal quantiles of one histogram fed both streams. *)
  List.iter
    (fun q ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "p%.0f of merge = p%.0f of union" (q *. 100.)
           (q *. 100.))
        (Histogram.quantile union q) (Histogram.quantile hm q))
    [ 0.25; 0.5; 0.9; 0.99 ]

let test_merge_shape_guards () =
  let a = Registry.create () and b = Registry.create () in
  ignore (Registry.counter a "x");
  ignore (Registry.gauge b "x");
  Alcotest.(check bool) "kind collision raises" true
    (match Merge.registries [ a; b ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let c = Registry.create () and d = Registry.create () in
  ignore (Registry.histogram c ~edges:[| 1.; 2. |] "h");
  ignore (Registry.histogram d ~edges:[| 1.; 3. |] "h");
  Alcotest.(check bool) "edge mismatch raises" true
    (match Merge.registries [ c; d ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_merge_singleton_exact () =
  let reg = build_registry 7 in
  (* Same-time events whose (label, message) order disagrees with
     insertion order: a singleton merge must not re-sort them. *)
  Registry.trace_event reg ~time:1000. ~label:"zz" "first";
  Registry.trace_event reg ~time:1000. ~label:"aa" "second";
  Alcotest.(check string) "singleton merge byte-identical"
    (Summary.to_string ~clock:5. reg)
    (Summary.to_string ~clock:5. (Merge.registries [ reg ]))

let test_merge_input_order_free () =
  let a = build_registry 3 and b = build_registry 9 in
  Alcotest.(check string) "merge order free"
    (Summary.to_string (Merge.registries [ a; b ]))
    (Summary.to_string (Merge.registries [ b; a ]))

let test_merge_deep_copies () =
  let a = Registry.create () in
  Counter.incr (Registry.counter a "c");
  let m = Merge.registries [ a ] in
  Counter.incr (Registry.counter a "c");
  Alcotest.(check (float 1e-9)) "input mutation does not alias" 1.
    (Counter.value (Registry.counter m "c"))

let () =
  Alcotest.run "obs"
    [
      ( "instruments",
        [
          Alcotest.test_case "counter" `Quick test_counter;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "histogram edges" `Quick test_histogram_edges;
          Alcotest.test_case "histogram special values" `Quick
            test_histogram_special_values;
          Alcotest.test_case "trace ring" `Quick test_trace_ring;
        ] );
      ( "registry",
        [
          Alcotest.test_case "label isolation" `Quick test_label_isolation;
          Alcotest.test_case "shape guards" `Quick test_shape_guards;
        ] );
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "numbers" `Quick test_json_number;
        ] );
      ( "summary",
        [
          Alcotest.test_case "determinism" `Quick test_summary_determinism;
          Alcotest.test_case "series sorted" `Quick test_summary_series_sorted;
        ] );
      ( "merge",
        [
          Alcotest.test_case "counters sum" `Quick test_merge_counters_sum;
          Alcotest.test_case "gauges max" `Quick test_merge_gauges_max;
          Alcotest.test_case "histograms bucketwise" `Quick
            test_merge_histograms_bucketwise;
          Alcotest.test_case "shape guards" `Quick test_merge_shape_guards;
          Alcotest.test_case "singleton exact" `Quick test_merge_singleton_exact;
          Alcotest.test_case "input order free" `Quick
            test_merge_input_order_free;
          Alcotest.test_case "deep copies" `Quick test_merge_deep_copies;
        ] );
    ]
