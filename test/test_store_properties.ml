(* Property layer for the consistent-hashing object ring and its
   replica-selection policies.

   The contracts under test (see DESIGN.md, "Replica placement"):

   - Ring structure: every partition holds [replicas] distinct
     devices; with at least as many (weight-balanced) zones as
     replicas, the replicas land in distinct zones; the handoff walk
     never repeats a primary, never repeats itself, covers every other
     live device, and visits the partition's missing zones first.
   - Balance: each device's slot count tracks its weight-proportional
     desired share within a small tolerance.
   - Minimal movement: adding a device moves at most its rounded fair
     share of slots, all of them toward the newcomer; removing one
     reassigns exactly the slots it held.
   - Determinism: the whole ring is a pure function of
     (seed, part_power, replicas, specs); a scenario run is a pure
     function of its seeds.
   - Policies: under a triangle-inequality delay space with an exact
     predictor, all four policies pick the same replica; the
     alert-aware policy never picks a flagged (likely-TIV) replica
     while a clean one is available.
   - Validation: bad workload parameters raise [Invalid_argument]
     naming the offending field.

   Reads TIVAWARE_PROP_SEED so the CI matrix (seeds 13-15) re-runs
   everything under distinct seeds. *)

module Rng = Tivaware_util.Rng
module Zipf = Tivaware_util.Zipf
module Matrix = Tivaware_delay_space.Matrix
module Euclidean = Tivaware_topology.Euclidean
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Churn = Tivaware_measure.Churn
module Dynamics = Tivaware_measure.Dynamics
module Backend = Tivaware_backend.Delay_backend
module Ring = Tivaware_store.Ring
module Policy = Tivaware_store.Policy
module Scenario = Tivaware_store.Scenario

let prop_seed =
  match Sys.getenv_opt "TIVAWARE_PROP_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 0)
  | None -> 0

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let qcheck ~count ~name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Zone-balanced ring configurations: [zones >= replicas] and every
   zone carries the same weight multiset, the regime in which both the
   dispersion and the balance contracts are exact (a deployment with
   wildly unequal zones cannot satisfy both at once).  Derived
   deterministically from one integer so qcheck shrinks cleanly. *)
let ring_of_case case =
  let r = Rng.create ((prop_seed * 1_000_003) + case) in
  let replicas = 2 + Rng.int r 3 in
  let zones = replicas + Rng.int r 3 in
  let per_zone = 2 + Rng.int r 3 in
  let part_power = 4 + Rng.int r 3 in
  let pattern = Array.init per_zone (fun _ -> float_of_int (1 + Rng.int r 4)) in
  let specs =
    Array.init (zones * per_zone) (fun i ->
        { Ring.node = i; zone = i / per_zone; weight = pattern.(i mod per_zone) })
  in
  let seed = 1 + Rng.int r 100_000 in
  (Ring.create ~seed ~part_power ~replicas specs, specs, seed, part_power, replicas)

let gen_case = QCheck2.Gen.int_range 0 9999

let test_partitions_distinct =
  qcheck ~count:40 ~name:"every partition holds [replicas] distinct devices"
    gen_case (fun case ->
      let ring, _, _, _, replicas = ring_of_case case in
      let ok = ref true in
      for p = 0 to Ring.parts ring - 1 do
        let a = Ring.assignment ring p in
        if Array.length a <> replicas then ok := false;
        Array.iteri
          (fun i id ->
            if Ring.device ring id = None then ok := false;
            Array.iteri (fun j id' -> if i < j && id = id' then ok := false) a)
          a
      done;
      !ok)

let test_zone_dispersion =
  qcheck ~count:40 ~name:"replicas land in distinct zones (balanced zones)"
    gen_case (fun case ->
      let ring, specs, _, _, replicas = ring_of_case case in
      let zone id = (Option.get (Ring.device ring id)).Ring.zone in
      ignore specs;
      let ok = ref true in
      for p = 0 to Ring.parts ring - 1 do
        let zs = Array.map zone (Ring.assignment ring p) in
        let distinct =
          Array.length zs = replicas
          && Array.for_all
               (fun z -> Array.fold_left (fun k z' -> if z = z' then k + 1 else k) 0 zs = 1)
               zs
        in
        if not distinct then ok := false
      done;
      !ok)

let test_handoff =
  qcheck ~count:40 ~name:"handoff never repeats a primary, covers everyone, missing zones first"
    gen_case (fun case ->
      let ring, _, _, _, replicas = ring_of_case case in
      let zone id = (Option.get (Ring.device ring id)).Ring.zone in
      let live = Array.length (Ring.devices ring) in
      let ok = ref true in
      let check_part p =
        let primaries = Ring.assignment ring p in
        let walk = Ring.handoff ring p in
        if Array.length walk <> live - replicas then ok := false;
        Array.iter
          (fun id -> if Array.exists (( = ) id) primaries then ok := false)
          walk;
        Array.iteri
          (fun i id -> Array.iteri (fun j id' -> if i < j && id = id' then ok := false) walk)
          walk;
        (* Missing zones are restored by the walk's prefix. *)
        let primary_zones = Array.map zone primaries in
        let missing =
          List.sort_uniq compare
            (List.filter
               (fun z -> not (Array.exists (( = ) z) primary_zones))
               (Array.to_list (Array.map zone walk)))
        in
        let prefix = Array.sub walk 0 (List.length missing) in
        let prefix_zones = List.sort_uniq compare (Array.to_list (Array.map zone prefix)) in
        if prefix_zones <> missing then ok := false
      in
      for p = 0 to min (Ring.parts ring - 1) 31 do
        check_part p
      done;
      !ok)

let test_balance =
  qcheck ~count:40 ~name:"slot counts track weight-proportional desired shares"
    gen_case (fun case ->
      let ring, _, _, _, _ = ring_of_case case in
      Array.for_all
        (fun d ->
          let id = d.Ring.id in
          let want = Ring.desired_share ring id in
          let got = float_of_int (Ring.assigned ring id) in
          abs_float (got -. want) <= Float.max 2. (0.08 *. want))
        (Ring.devices ring))

let test_determinism =
  qcheck ~count:25 ~name:"assignment is a pure function of (seed, specs)"
    gen_case (fun case ->
      let ring1, _, _, _, _ = ring_of_case case in
      let ring2, _, _, _, _ = ring_of_case case in
      let ok = ref true in
      for p = 0 to Ring.parts ring1 - 1 do
        if Ring.assignment ring1 p <> Ring.assignment ring2 p then ok := false
      done;
      !ok)

let snapshot ring =
  Array.init (Ring.parts ring) (Ring.assignment ring)

let diff_slots before after =
  let d = ref [] in
  Array.iteri
    (fun p row ->
      Array.iteri (fun r id -> if after.(p).(r) <> id then d := (p, r) :: !d) row)
    before;
  !d

let test_add_minimal_movement =
  qcheck ~count:30 ~name:"add_device moves at most the newcomer's fair share, all toward it"
    gen_case (fun case ->
      let ring, _, _, _, _ = ring_of_case case in
      let r = Rng.create ((prop_seed * 7_919) + case) in
      let before = snapshot ring in
      let id =
        Ring.add_device ring
          { Ring.node = 10_000 + case; zone = Rng.int r 6; weight = float_of_int (1 + Rng.int r 4) }
      in
      let after = snapshot ring in
      let moved = diff_slots before after in
      let share = Ring.desired_share ring id in
      List.length moved = Ring.last_moves ring
      && List.for_all (fun (p, r') -> after.(p).(r') = id) moved
      && float_of_int (List.length moved) <= ceil share +. 0.5)

let test_remove_minimal_movement =
  qcheck ~count:30 ~name:"remove_device reassigns exactly the slots it held"
    gen_case (fun case ->
      let ring, _, _, _, _ = ring_of_case case in
      let r = Rng.create ((prop_seed * 104_729) + case) in
      let devs = Ring.devices ring in
      let victim = devs.(Rng.int r (Array.length devs)).Ring.id in
      let held = Ring.assigned ring victim in
      let before = snapshot ring in
      Ring.remove_device ring victim;
      let after = snapshot ring in
      let moved = diff_slots before after in
      List.length moved = held
      && Ring.last_moves ring = held
      && List.for_all (fun (p, r') -> before.(p).(r') = victim) moved
      && List.for_all (fun (p, r') -> Ring.device ring after.(p).(r') <> None) moved)

let test_partition_map_stable () =
  let ring, _, _, _, _ = ring_of_case 42 in
  let objs = Array.init 200 (fun i -> i * 7919) in
  let before = Array.map (Ring.partition_of ring) objs in
  Array.iter
    (fun p -> checkb "in range" true (p >= 0 && p < Ring.parts ring))
    before;
  ignore
    (Ring.add_device ring { Ring.node = 9_999; zone = 0; weight = 2. });
  let after = Array.map (Ring.partition_of ring) objs in
  checkb "rebalance never remaps objects" true (before = after)

(* --- policies --- *)

let oracle_engine m = Engine.of_matrix m

let ti_matrix = lazy (Euclidean.uniform_box (Rng.create 6007) ~n:40 ~dim:3 ~side_ms:200.)

let test_policies_agree_under_ti =
  qcheck ~count:60 ~name:"all policies agree when the delay space satisfies the TI"
    QCheck2.Gen.(pair (int_range 0 9999) (int_range 2 8))
    (fun (salt, k) ->
      let m = Lazy.force ti_matrix in
      let r = Rng.create ((prop_seed * 31_337) + salt) in
      let nodes = Rng.sample_indices r ~n:(Matrix.size m) ~k:(k + 1) in
      let client = nodes.(0) in
      let candidates = Array.init k (fun i -> (i, nodes.(i + 1))) in
      let predicted i j = Matrix.get m i j in
      let pick policy =
        Policy.select policy ~engine:(oracle_engine m) ~client ~candidates
      in
      let choices =
        [
          pick (Policy.naive ());
          pick (Policy.coordinate predicted);
          pick (Policy.probe ());
          pick (Policy.alert predicted);
        ]
      in
      match choices with
      | Some a :: rest ->
          List.for_all
            (function
              | Some c -> c.Policy.device = a.Policy.device && c.Policy.node = a.Policy.node
              | None -> false)
            rest
      | _ -> false)

let test_alert_skips_flagged =
  qcheck ~count:60 ~name:"alert never selects a flagged replica while a clean one exists"
    QCheck2.Gen.(pair (int_range 0 9999) (int_range 2 6))
    (fun (salt, clean_count) ->
      let r = Rng.create ((prop_seed * 65_537) + salt) in
      (* Node 0 is the client; candidates 1..k.  Flagged candidates
         look closest in prediction (shrunk edges) but measure far;
         clean candidates predict exactly what they measure. *)
      let flagged_count = 1 + Rng.int r 3 in
      let k = clean_count + flagged_count in
      let flagged = Array.init k (fun i -> i < flagged_count) in
      (* Flagged edges measure far (150-250 ms) but predict very near
         (x0.1, so 15-25 ms); clean edges predict exactly their 30-100
         ms measurement.  Every flagged candidate therefore sorts ahead
         of every clean one, forcing the walk to consider and skip it. *)
      let delays =
        Array.init (k + 1) (fun i ->
            if i = 0 then 0.
            else if flagged.(i - 1) then 150. +. Rng.float r 100.
            else 30. +. Rng.float r 70.)
      in
      let backend =
        Backend.of_fn ~size:(k + 1) (fun i j ->
            if i = j then 0. else delays.(max i j))
      in
      let predicted i j =
        let c = max i j - 1 in
        if min i j <> 0 || c < 0 || c >= k then nan
        else if flagged.(c) then delays.(max i j) *. 0.1
        else delays.(max i j)
      in
      let engine = Backend.engine backend in
      let candidates = Array.init k (fun i -> (i, i + 1)) in
      match
        Policy.select (Policy.alert predicted) ~engine ~client:0 ~candidates
      with
      | Some c -> (not flagged.(c.Policy.device)) && c.Policy.skipped_flagged >= 1
      | None -> false)

let test_alert_all_flagged_picks_best_measured () =
  let delays = [| 0.; 120.; 80.; 150. |] in
  let backend =
    Backend.of_fn ~size:4 (fun i j -> if i = j then 0. else delays.(max i j))
  in
  let predicted i j = if min i j = 0 then delays.(max i j) *. 0.1 else nan in
  let engine = Backend.engine backend in
  let candidates = [| (0, 1); (1, 2); (2, 3) |] in
  match Policy.select (Policy.alert predicted) ~engine ~client:0 ~candidates with
  | Some c ->
      checki "falls back to the best measured flagged replica" 1 c.Policy.device;
      checki "every candidate was flagged" 3 c.Policy.skipped_flagged
  | None -> Alcotest.fail "expected a fallback choice"

(* --- validation --- *)

let expect_invalid name substr f =
  match f () with
  | exception Invalid_argument msg ->
      checkb
        (Printf.sprintf "%s: message %S names %S" name msg substr)
        true
        (let len = String.length substr in
         let ok = ref false in
         String.iteri
           (fun i _ ->
             if i + len <= String.length msg && String.sub msg i len = substr then
               ok := true)
           msg;
         !ok)
  | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")

let test_validation () =
  expect_invalid "zipf n" "n must be >= 1" (fun () -> Zipf.create ~n:0 ~s:0.9);
  expect_invalid "zipf s" "s must be non-negative" (fun () ->
      Zipf.create ~n:10 ~s:(-1.));
  expect_invalid "objects" "objects" (fun () ->
      Scenario.validate_config "Store.Scenario"
        { Scenario.default_config with Scenario.objects = 0 });
  expect_invalid "replicas" "replicas" (fun () ->
      Scenario.validate_config "Store.Scenario"
        { Scenario.default_config with Scenario.replicas = 9; devices = 4 });
  expect_invalid "zipf_s" "zipf_s" (fun () ->
      Scenario.validate_config "Store.Scenario"
        { Scenario.default_config with Scenario.zipf_s = -0.5 });
  expect_invalid "duration" "duration" (fun () ->
      Scenario.validate_config "Store.Scenario"
        { Scenario.default_config with Scenario.duration = 0. });
  expect_invalid "weight" "weight" (fun () ->
      Ring.create ~part_power:4 ~replicas:2
        [|
          { Ring.node = 0; zone = 0; weight = 1. };
          { Ring.node = 1; zone = 1; weight = -3. };
        |]);
  expect_invalid "ring replicas" "replicas" (fun () ->
      Ring.create ~part_power:4 ~replicas:5
        [|
          { Ring.node = 0; zone = 0; weight = 1. };
          { Ring.node = 1; zone = 1; weight = 1. };
        |]);
  expect_invalid "threshold" "threshold" (fun () ->
      Policy.alert ~threshold:0. (fun _ _ -> 1.))

(* --- scenario determinism --- *)

let scenario_matrix = lazy (Euclidean.uniform_box (Rng.create 6991) ~n:60 ~dim:3 ~side_ms:250.)

let run_scenario seed =
  let m = Lazy.force scenario_matrix in
  let backend = Backend.dense m in
  let engine =
    Backend.engine
      ~config:
        {
          Engine.fault = { Fault.default with Fault.loss = 0.05 };
          profile = None;
          churn = Some { Churn.fraction = 0.25; mean_up = 50.; mean_down = 15.; seed = seed + 3 };
          dynamics = Some Dynamics.default;
          budget = None;
          cache_ttl = None;
          cache_capacity = None;
          charge_time = false;
          seed;
        }
      backend
  in
  let config =
    {
      Scenario.default_config with
      Scenario.devices = 16;
      zones = 4;
      part_power = 5;
      replicas = 3;
      objects = 64;
      reads = 120;
      duration = 90.;
      repair_interval = 10.;
      seed = seed + 11;
    }
  in
  let sc =
    Scenario.create ~config ~policy:(Policy.naive ()) ~backend ~engine ()
  in
  Scenario.run sc

let test_scenario_deterministic () =
  let a = run_scenario (1000 + prop_seed) in
  let b = run_scenario (1000 + prop_seed) in
  checkb "identical results" true (a = b);
  checki "issued + skipped = reads" 120 (a.Scenario.issued + a.Scenario.skipped);
  checki "completed + failed = issued" a.Scenario.issued
    (a.Scenario.completed + a.Scenario.failed);
  checki "one latency per completed read" a.Scenario.completed
    (Array.length a.Scenario.latencies);
  checkb "repair passes ran" true (a.Scenario.repair.Scenario.passes >= 8)

let () =
  Alcotest.run "store_properties"
    [
      ( "ring",
        [
          test_partitions_distinct;
          test_zone_dispersion;
          test_handoff;
          test_balance;
          test_determinism;
          test_add_minimal_movement;
          test_remove_minimal_movement;
          Alcotest.test_case "partition map stable across rebalance" `Quick
            test_partition_map_stable;
        ] );
      ( "policy",
        [
          test_policies_agree_under_ti;
          test_alert_skips_flagged;
          Alcotest.test_case "alert all-flagged fallback" `Quick
            test_alert_all_flagged_picks_best_measured;
        ] );
      ( "validation",
        [ Alcotest.test_case "invalid params name the field" `Quick test_validation ] );
      ( "scenario",
        [
          Alcotest.test_case "seeded run is deterministic" `Quick
            test_scenario_deterministic;
        ] );
    ]
