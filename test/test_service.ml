(* Tests for the query-serving harness: work-queue blocking semantics
   and shutdown liveness, workload partition independence, and the
   driver's two determinism contracts — `--domains 1` bit-identical to
   the sequential reference, and N-domain merged summaries reproducible
   run over run. *)

module Rng = Tivaware_util.Rng
module Euclidean = Tivaware_topology.Euclidean
module Backend = Tivaware_backend.Delay_backend
module Engine = Tivaware_measure.Engine
module Obs = Tivaware_obs
module Work_queue = Tivaware_service.Work_queue
module Workload = Tivaware_service.Workload
module Shard = Tivaware_service.Shard
module Driver = Tivaware_service.Driver

let checkf = Alcotest.check (Alcotest.float 1e-9)

(* ------------------------------------------------------------------ *)
(* Work queue                                                          *)

let test_queue_fifo () =
  let q = Work_queue.create () in
  for i = 1 to 5 do
    Work_queue.push q i
  done;
  Alcotest.(check int) "length" 5 (Work_queue.length q);
  Work_queue.close q;
  let drained = List.init 6 (fun _ -> Work_queue.pop q) in
  Alcotest.(check (list (option int)))
    "drained in order, then None"
    [ Some 1; Some 2; Some 3; Some 4; Some 5; None ]
    drained

let test_queue_closed_push_raises () =
  let q = Work_queue.create () in
  Work_queue.close q;
  Alcotest.(check bool) "closed" true (Work_queue.is_closed q);
  Alcotest.(check bool) "push raises" true
    (match Work_queue.push q 1 with
    | exception Invalid_argument _ -> true
    | () -> false)

let test_queue_capacity_validation () =
  Alcotest.(check bool) "zero capacity rejected" true
    (match Work_queue.create ~capacity:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* A producer pushing past capacity must block until a consumer makes
   room — and then complete.  Deadlock here hangs the test (alcotest's
   failure mode for broken blocking semantics). *)
let test_queue_push_blocks_until_pop () =
  let q = Work_queue.create ~capacity:1 () in
  Work_queue.push q 1;
  let producer = Domain.spawn (fun () -> Work_queue.push q 2) in
  (* The producer is blocked on a full queue; popping must unblock it. *)
  Alcotest.(check (option int)) "first" (Some 1) (Work_queue.pop q);
  Domain.join producer;
  Alcotest.(check (option int)) "second" (Some 2) (Work_queue.pop q)

(* A consumer blocked on an empty queue must wake on close and see the
   end of the stream. *)
let test_queue_close_wakes_consumer () =
  let q : int Work_queue.t = Work_queue.create () in
  let consumer = Domain.spawn (fun () -> Work_queue.pop q) in
  Work_queue.close q;
  Alcotest.(check (option int)) "woken with None" None (Domain.join consumer)

(* Drain: every item is consumed exactly once across competing
   consumers, and all of them terminate after close. *)
let test_queue_multi_consumer_drain () =
  let q = Work_queue.create ~capacity:2 () in
  let n = 50 in
  let consumers =
    Array.init 3 (fun _ ->
        Domain.spawn (fun () ->
            let rec loop acc =
              match Work_queue.pop q with
              | None -> acc
              | Some x -> loop (x :: acc)
            in
            loop []))
  in
  for i = 0 to n - 1 do
    Work_queue.push q i
  done;
  Work_queue.close q;
  let got =
    Array.to_list consumers |> List.concat_map Domain.join |> List.sort compare
  in
  Alcotest.(check (list int)) "each item exactly once" (List.init n Fun.id) got

(* ------------------------------------------------------------------ *)
(* Workload                                                            *)

let test_workload_mix_validation () =
  let bad m =
    match Workload.validate_mix m with
    | exception Invalid_argument _ -> true
    | () -> false
  in
  Alcotest.(check bool) "zero mix rejected" true
    (bad { Workload.closest = 0; dht = 0; multicast = 0 });
  Alcotest.(check bool) "negative weight rejected" true
    (bad { Workload.closest = -1; dht = 2; multicast = 0 });
  Workload.validate_mix Workload.default_mix

(* A query's draws are a pure function of (seed, qid) — re-drawing
   gives the identical gap, kind and parameter stream. *)
let test_workload_draws_pure () =
  let mix = Workload.default_mix in
  for qid = 0 to 49 do
    let g1, k1, r1 = Workload.draws ~seed:42 ~qid ~rate:(Some 20.) mix in
    let g2, k2, r2 = Workload.draws ~seed:42 ~qid ~rate:(Some 20.) mix in
    checkf "gap" g1 g2;
    Alcotest.(check string) "kind" (Workload.kind_label k1)
      (Workload.kind_label k2);
    for _ = 1 to 5 do
      Alcotest.(check int) "param stream" (Rng.int r1 1000) (Rng.int r2 1000)
    done
  done

let test_workload_gap_modes () =
  let mix = Workload.default_mix in
  let gap_closed, _, _ = Workload.draws ~seed:7 ~qid:3 ~rate:None mix in
  checkf "closed loop draws no gap" 0. gap_closed;
  let gap_open, _, _ = Workload.draws ~seed:7 ~qid:3 ~rate:(Some 10.) mix in
  Alcotest.(check bool) "open loop gap positive" true (gap_open > 0.);
  (* Different seeds reseed the arrival process. *)
  let gap_other, _, _ = Workload.draws ~seed:8 ~qid:3 ~rate:(Some 10.) mix in
  Alcotest.(check bool) "seed changes the gap" true (gap_open <> gap_other)

let test_workload_mix_respected () =
  (* An all-DHT mix must never draw another kind. *)
  let mix = { Workload.closest = 0; dht = 1; multicast = 0 } in
  for qid = 0 to 99 do
    let _, kind, _ = Workload.draws ~seed:3 ~qid ~rate:None mix in
    Alcotest.(check string) "dht only" "dht" (Workload.kind_label kind)
  done

(* ------------------------------------------------------------------ *)
(* Driver determinism                                                  *)

let small_spec ?rate ?(queries = 60) ?(seed = 11) () =
  let m = Euclidean.uniform_box (Rng.create 5) ~n:60 ~dim:3 ~side_ms:300. in
  {
    Shard.seed;
    engine_config = Engine.default_config;
    make_backend = (fun () -> Backend.dense m);
    meridian_count = 8;
    candidate_budget = None;
    beta = 0.5;
    rate;
    mix = Workload.default_mix;
    queries;
  }

let summary result =
  Obs.Summary.to_string ~clock:result.Driver.clock result.Driver.obs

let test_single_domain_matches_sequential () =
  let spec = small_spec () in
  let seq = Driver.run_sequential spec in
  let one = Driver.run ~domains:1 spec in
  Alcotest.(check string) "summaries bit-identical" (summary seq) (summary one)

let test_single_domain_matches_sequential_open_loop () =
  let spec = small_spec ~rate:40. () in
  let seq = Driver.run_sequential spec in
  let one = Driver.run ~domains:1 spec in
  Alcotest.(check string) "summaries bit-identical" (summary seq) (summary one)

let test_multi_domain_reproducible () =
  let spec = small_spec () in
  let a = Driver.run ~domains:3 spec in
  let b = Driver.run ~domains:3 spec in
  Alcotest.(check string) "3-domain summaries reproducible" (summary a)
    (summary b)

let served result =
  Array.fold_left
    (fun acc k ->
      acc
      +. Obs.Counter.value
           (Obs.Registry.counter result.Driver.obs
              ~labels:[ ("kind", Workload.kind_label k) ]
              "service.queries"))
    0. Workload.kinds

(* The static partition covers the stream: whatever the domain count,
   every query is served exactly once. *)
let test_partition_covers_stream () =
  let spec = small_spec () in
  List.iter
    (fun domains ->
      let r = Driver.run ~domains spec in
      checkf
        (Printf.sprintf "%d domains serve all queries" domains)
        (float_of_int spec.Shard.queries)
        (served r))
    [ 1; 2; 3; 4 ]

(* Open loop: every shard accumulates the same global arrival clock, so
   the run's clock equals the full stream's last arrival — for any
   domain count — and is reproducible from the seed alone. *)
let test_arrival_clock_seeded () =
  let spec = small_spec ~rate:40. () in
  let expected =
    let total = ref 0. in
    for qid = 0 to spec.Shard.queries - 1 do
      let gap, _, _ =
        Workload.draws ~seed:spec.Shard.seed ~qid ~rate:spec.Shard.rate
          spec.Shard.mix
      in
      total := !total +. gap
    done;
    !total
  in
  let seq = Driver.run_sequential spec in
  checkf "sequential clock = last arrival" expected seq.Driver.clock;
  let multi = Driver.run ~domains:3 spec in
  checkf "3-domain clock = last arrival" expected multi.Driver.clock

let test_driver_validation () =
  Alcotest.(check bool) "domains 0 rejected" true
    (match Driver.run ~domains:0 (small_spec ()) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "meridian_count 0 rejected" true
    (match
       Driver.run_sequential { (small_spec ()) with Shard.meridian_count = 0 }
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative rate rejected" true
    (match Driver.run_sequential (small_spec ~rate:(-1.) ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "service"
    [
      ( "work_queue",
        [
          Alcotest.test_case "fifo drain" `Quick test_queue_fifo;
          Alcotest.test_case "push after close raises" `Quick
            test_queue_closed_push_raises;
          Alcotest.test_case "capacity validation" `Quick
            test_queue_capacity_validation;
          Alcotest.test_case "push blocks until pop" `Quick
            test_queue_push_blocks_until_pop;
          Alcotest.test_case "close wakes consumer" `Quick
            test_queue_close_wakes_consumer;
          Alcotest.test_case "multi-consumer drain" `Quick
            test_queue_multi_consumer_drain;
        ] );
      ( "workload",
        [
          Alcotest.test_case "mix validation" `Quick
            test_workload_mix_validation;
          Alcotest.test_case "draws are pure" `Quick test_workload_draws_pure;
          Alcotest.test_case "gap modes" `Quick test_workload_gap_modes;
          Alcotest.test_case "mix respected" `Quick test_workload_mix_respected;
        ] );
      ( "driver",
        [
          Alcotest.test_case "domains 1 = sequential" `Quick
            test_single_domain_matches_sequential;
          Alcotest.test_case "domains 1 = sequential (open loop)" `Quick
            test_single_domain_matches_sequential_open_loop;
          Alcotest.test_case "multi-domain reproducible" `Quick
            test_multi_domain_reproducible;
          Alcotest.test_case "partition covers stream" `Quick
            test_partition_covers_stream;
          Alcotest.test_case "arrival clock seeded" `Quick
            test_arrival_clock_seeded;
          Alcotest.test_case "validation" `Quick test_driver_validation;
        ] );
    ]
