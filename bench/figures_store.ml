(* Object-store read path: not a paper figure — the replica-selection
   experiment behind lib/store.  One arm per policy over the identical
   world (same ring, same Zipf reads, same churn schedule, same diurnal
   route dynamics): naive measure-once caching, Vivaldi coordinates,
   Meridian-style probing, and the TIV-alerted hybrid that probes but
   quarantines pairs whose coordinate prediction collapses below the
   alert threshold.  Companion to test/test_store_properties.ml and the
   committed BENCH_store.md. *)

module Rng = Tivaware_util.Rng
module Table = Tivaware_util.Table
module Stats = Tivaware_util.Stats
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Churn = Tivaware_measure.Churn
module Dynamics = Tivaware_measure.Dynamics
module Probe_stats = Tivaware_measure.Probe_stats
module System = Tivaware_vivaldi.System
module Selectors = Tivaware_core.Selectors
module Backend = Tivaware_backend.Delay_backend
module Store_policy = Tivaware_store.Policy
module Store_scenario = Tivaware_store.Scenario

(* One policy arm, mirroring `tivlab store --loss 0.03 --churn
   --dynamics diurnal`: the scenario engine is rebuilt per arm with the
   same seeds, so every policy sees the identical fault/churn/dynamics
   streams; coordinate-consuming policies pay for their embedding on a
   separate maintenance engine (same world, seed + 1) whose probes are
   reported as maintenance overhead. *)
let arm ctx policy_kind =
  let backend = Backend.dense (Context.matrix ctx) in
  let seed = ctx.Context.seed in
  let config engine_seed =
    {
      Engine.fault = { Fault.default with Fault.loss = 0.03 };
      profile = None;
      churn = Some { Churn.default with Churn.fraction = 0.2; seed = engine_seed };
      dynamics =
        Some
          {
            Dynamics.default with
            Dynamics.diurnal = Some Dynamics.default_diurnal;
            seed = engine_seed;
          };
      budget = None;
      cache_ttl = None;
      cache_capacity = None;
      charge_time = false;
      seed = engine_seed;
    }
  in
  let engine = Backend.engine ~config:(config seed) backend in
  let maintenance = ref None in
  let predictor () =
    let e = Backend.engine ~config:(config (seed + 1)) backend in
    let system =
      Selectors.embed_vivaldi_engine (Rng.create (seed + 1)) e
    in
    maintenance := Some e;
    fun i j -> System.predicted system i j
  in
  let policy =
    match policy_kind with
    | `Naive -> Store_policy.naive ()
    | `Vivaldi -> Store_policy.coordinate (predictor ())
    | `Meridian -> Store_policy.probe ()
    | `Alert -> Store_policy.alert (predictor ())
  in
  let sc =
    Store_scenario.create
      ~config:{ Store_scenario.default_config with Store_scenario.seed = seed + 17 }
      ~policy ~backend ~engine ()
  in
  let result = Store_scenario.run sc in
  let maint_probes =
    match !maintenance with
    | None -> 0
    | Some e -> Probe_stats.label_count (Engine.stats e) "vivaldi"
  in
  (result, maint_probes)

let store ctx =
  Report.section "store"
    "Object-store reads over the consistent-hashing ring: replica \
     selection policy vs read latency under churn and route dynamics";
  Report.expectation
    "the TIV-alerted policy beats naive caching on p99 read latency \
     (measure-once estimates go stale under churn and the diurnal \
     loss swing) while spending fewer foreground probes than \
     exhaustive Meridian-style probing";
  let table =
    Table.create
      ~header:
        [
          "policy"; "reads"; "mean ms"; "p50 ms"; "p99 ms"; "probes/read";
          "maint probes"; "dead"; "handoffs"; "rehomed";
        ]
  in
  let row kind =
    let result, maint = arm ctx kind in
    let lat = result.Store_scenario.latencies in
    let completed = max 1 result.Store_scenario.completed in
    let p99 = Stats.percentile lat 99. in
    Table.add_row table
      [
        Store_policy.name
          (match kind with
          | `Naive -> Store_policy.naive ()
          | `Vivaldi -> Store_policy.coordinate (fun _ _ -> 0.)
          | `Meridian -> Store_policy.probe ()
          | `Alert -> Store_policy.alert (fun _ _ -> 0.));
        string_of_int result.Store_scenario.completed;
        Printf.sprintf "%.1f" (Stats.mean lat);
        Printf.sprintf "%.1f" (Stats.percentile lat 50.);
        Printf.sprintf "%.1f" p99;
        Printf.sprintf "%.2f"
          (float_of_int result.Store_scenario.policy_probes
          /. float_of_int completed);
        string_of_int maint;
        string_of_int result.Store_scenario.dead_attempts;
        string_of_int result.Store_scenario.handoffs;
        string_of_int result.Store_scenario.repair.Store_scenario.total_rehomed;
      ];
    (p99, result.Store_scenario.policy_probes)
  in
  let naive_p99, _ = row `Naive in
  let _ = row `Vivaldi in
  let _, meridian_probes = row `Meridian in
  let alert_p99, alert_probes = row `Alert in
  Table.print table;
  Report.measured
    "p99 read latency %.1f ms alert vs %.1f ms naive; alert foreground \
     probes %d vs %d meridian"
    alert_p99 naive_p99 alert_probes meridian_probes;
  Report.note
    "all arms replay the identical churn schedule and diurnal cycle; \
     naive trusts its first measurement forever, so its tail tracks \
     replicas that died or were mismeasured after the cache filled"

let register () =
  Registry.register "store"
    "Store replica selection: policy vs read latency under dynamics"
    store
