(* Continuous stabilization: not a paper figure — an extension
   quantifying what periodic stabilize/notify/fix-fingers buys a
   Chord keyspace under burst churn, as a function of the
   stabilization interval and of the probe budget carved out for the
   maintenance plane.  Companion to the test/test_dht_properties.ml
   invariant suite. *)

module Rng = Tivaware_util.Rng
module Table = Tivaware_util.Table
module Zipf = Tivaware_util.Zipf
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Churn = Tivaware_measure.Churn
module Arbiter = Tivaware_measure.Arbiter
module Probe_stats = Tivaware_measure.Probe_stats
module Sim = Tivaware_eventsim.Sim
module Chord = Tivaware_dht.Chord
module Id_space = Tivaware_dht.Id_space

let duration = 240.
let lookup_count = 300
let key_count = 256

(* One service run: a churning engine, a Chord ring with a placed
   keyspace, and a Zipf lookup workload spread over [duration].  With
   an [interval] the stabilizer runs as staggered simulator events
   (optionally token-gated by an arbiter [share]); without one the
   structure and placement stay as built, and churn erodes them.  The
   workload is identical across arms: same seeds, same churn schedule,
   same lookup times. *)
let arm ctx ?interval ?share () =
  let n = ctx.Context.size in
  let churn =
    { Churn.fraction = 0.3; mean_up = 60.; mean_down = 120.; seed = ctx.Context.seed + 83 }
  in
  let e =
    Engine.of_matrix
      ~config:
        {
          Engine.fault = Fault.default;
          profile = None;
          churn = Some churn;
          dynamics = None;
          budget = None;
          cache_ttl = None;
          cache_capacity = None;
          charge_time = false;
          seed = ctx.Context.seed + 89;
        }
      (Context.matrix ctx)
  in
  let c = Option.get (Engine.churn e) in
  let chord = Chord.build_engine ~successor_list:8 e in
  let keys =
    let krng = Context.rng ctx 97 in
    Array.init key_count (fun i ->
        (Rng.int krng (Id_space.modulus lsr 10) lsl 10) lor i)
  in
  let store = Chord.Store.create ~replicas:2 chord ~keys in
  let sim = Sim.create () in
  let stab =
    match interval with
    | None ->
        (* No stabilizer: still slave the engine clock so churn moves
           with simulated time, exactly as Stabilizer.schedule would. *)
        Sim.on_advance sim (fun time -> Engine.advance_to e time);
        None
    | Some interval ->
        let arbiter =
          Option.map
            (fun share ->
              (* A deliberately tight total so arbitration bites: a
                 fraction of one probe per node-second, split between
                 the maintenance plane and foreground lookups. *)
              let total = 2. *. float_of_int n in
              Arbiter.create
                (Arbiter.config ~capacity:total ~rate:(total /. 4.)
                   ~shares:
                     [ ("chord_stabilize", share); ("dht", 1. -. share) ]))
            share
        in
        let config =
          { Chord.Stabilizer.default_config with Chord.Stabilizer.interval }
        in
        let stab = Chord.Stabilizer.create ~config ?arbiter ~store chord e in
        Chord.Stabilizer.schedule stab sim;
        Some stab
  in
  let zipf = Zipf.create ~n:key_count ~s:0.9 in
  let wl = Context.rng ctx 101 in
  let issued = ref 0 and correct = ref 0 in
  for i = 0 to lookup_count - 1 do
    let at = duration *. float_of_int (i + 1) /. float_of_int (lookup_count + 1) in
    Sim.schedule_at sim at (fun () ->
        let source = Rng.int wl n in
        let key = keys.(Zipf.sample zipf wl) in
        if Churn.is_up c source then begin
          incr issued;
          let o =
            Chord.lookup_fn chord (fun u v -> Engine.rtt ~label:"dht" e u v)
              ~source ~key
          in
          if Churn.is_up c o.Chord.owner
             && Chord.Store.holds store ~key ~node:o.Chord.owner
          then incr correct
        end)
  done;
  Sim.run sim ~until:duration;
  let totals =
    match stab with
    | Some s -> Chord.Stabilizer.totals s
    | None ->
        { Chord.Stabilizer.rounds = 0; checked = 0; rerouted = 0;
          marked_dead = 0; revived = 0; denied = 0 }
  in
  (!issued, !correct, Chord.Store.migrated store, totals, Engine.stats e)

let stabilize ctx =
  Report.section "stabilize"
    "Continuous stabilization: Chord lookup correctness under burst \
     churn vs stabilization interval and probe share";
  Report.expectation
    "with a short interval lookups find the live owner holding the key \
     >= 99%% of the time; without stabilization correctness is \
     measurably degraded; a token-gated arm shows denied rounds and a \
     visible per-plane probe split";
  let table =
    Table.create
      ~header:
        [
          "stabilize"; "share"; "lookups"; "correct"; "migrated";
          "rounds"; "denied"; "stab probes"; "dht probes";
        ]
  in
  let row label ?interval ?share () =
    let issued, correct, migrated, totals, st = arm ctx ?interval ?share () in
    Table.add_row table
      [
        label;
        (match share with None -> "-" | Some s -> Printf.sprintf "%.0f%%" (100. *. s));
        string_of_int issued;
        Printf.sprintf "%.1f%%"
          (100. *. float_of_int correct /. float_of_int (max 1 issued));
        string_of_int migrated;
        string_of_int totals.Chord.Stabilizer.rounds;
        string_of_int totals.Chord.Stabilizer.denied;
        string_of_int (Probe_stats.label_count st "chord-stabilize");
        string_of_int (Probe_stats.label_count st "dht");
      ];
    (100. *. float_of_int correct /. float_of_int (max 1 issued), st)
  in
  let off, _ = row "off" () in
  let on, _ = row "2s" ~interval:2. () in
  let _ = row "10s" ~interval:10. () in
  let _ = row "30s" ~interval:30. () in
  let _, gated = row "2s" ~interval:2. ~share:0.25 () in
  Table.print table;
  Report.measured "correctness %.1f%% stabilized vs %.1f%% off" on off;
  Report.note "per-label probe accounting (token-gated arm):";
  List.iter
    (fun (l, k) -> Printf.printf "  %-16s %d\n" l k)
    (Probe_stats.labels gated)

let register () =
  Registry.register "stabilize"
    "Continuous Chord stabilization vs interval and probe share" stabilize
