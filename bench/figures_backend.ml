(* Delay-backend scaling: resident memory and per-query cost, dense vs
   lazy, as the node count grows past what a dense matrix can hold.

   The dense rows materialize the full upper triangle (through the same
   per-pair synthesis the lazy backend answers from, so both rows
   describe the identical delay space); the lazy rows keep only the
   O(clusters^2) model plus the O(N) bucket assignment resident and
   answer a sampled query workload.  Dense at 100k nodes would need
   ~40 GB (100k * (100k-1) / 2 pairs * 8 bytes) and is reported
   analytically. *)

module Rng = Tivaware_util.Rng
module Table = Tivaware_util.Table
module Synthesizer = Tivaware_topology.Synthesizer
module Backend = Tivaware_backend.Delay_backend
module Obs = Tivaware_obs

(* VmRSS in MB from /proc/self/status; nan when unavailable. *)
let rss_mb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> nan
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file ->
        close_in ic;
        nan
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then begin
          close_in ic;
          try
            Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d kB"
              (fun kb -> float_of_int kb /. 1024.)
          with Scanf.Scan_failure _ | Failure _ -> nan
        end
        else scan ()
    in
    scan ()

(* Mean wall-clock microseconds per query over a uniform random pair
   workload. *)
let query_cost backend rng ~queries =
  let n = Backend.size backend in
  let t0 = Unix.gettimeofday () in
  let sink = ref 0. in
  for _ = 1 to queries do
    let i = Rng.int rng n in
    let j = (i + 1 + Rng.int rng (n - 1)) mod n in
    let d = Backend.query backend i j in
    if not (Float.is_nan d) then sink := !sink +. d
  done;
  ignore !sink;
  (Unix.gettimeofday () -. t0) /. float_of_int queries *. 1e6

let gauge ctx ~kind ~nodes name v =
  Obs.Gauge.set
    (Obs.Registry.gauge (Context.obs ctx)
       ~labels:[ ("kind", kind); ("nodes", string_of_int nodes) ]
       name)
    v

let backend_scaling ctx =
  Report.section "backend"
    "Delay backends: nodes vs resident memory and per-query cost";
  Report.expectation
    "dense memory grows O(N^2) and caps out around 10k nodes; lazy \
     synthesis holds RSS near-flat through 100k nodes at a per-query \
     cost of a few hash-seeded RNG draws";
  let model = Synthesizer.analyze (Context.matrix ctx) in
  let seed = ctx.Context.seed + 61 in
  let queries = 200_000 in
  let table =
    Table.create
      ~header:[ "backend"; "nodes"; "rss_delta_mb"; "us/query"; "queries" ]
  in
  let row ~kind ~nodes build =
    Gc.compact ();
    let before = rss_mb () in
    match build () with
    | None ->
      (* Analytic row: the dense triangle alone at this scale. *)
      let bytes = float_of_int nodes *. float_of_int (nodes - 1) /. 2. *. 8. in
      Table.add_row table
        [
          kind;
          string_of_int nodes;
          Printf.sprintf "~%.0f (analytic)" (bytes /. 1024. /. 1024.);
          "-";
          "0";
        ]
    | Some backend ->
      let cost = query_cost backend (Rng.create (seed + nodes)) ~queries in
      let after = rss_mb () in
      let delta = Float.max 0. (after -. before) in
      Table.add_row table
        [
          kind;
          string_of_int nodes;
          Printf.sprintf "%.1f" delta;
          Printf.sprintf "%.3f" cost;
          string_of_int queries;
        ];
      gauge ctx ~kind ~nodes "backend.bench.rss_delta_mb" delta;
      gauge ctx ~kind ~nodes "backend.bench.query_us" cost
  in
  (* Dense rows materialize the lazy space eagerly, so dense and lazy
     rows at the same node count describe the same delay space. *)
  let dense_at nodes =
    row ~kind:"dense" ~nodes (fun () ->
        Some
          (Backend.dense
             (Backend.densify (Backend.lazy_synth ~seed ~size:nodes model))))
  in
  let lazy_at ?(kind = "lazy") ?memo nodes =
    row ~kind ~nodes (fun () ->
        Some (Backend.lazy_synth ?memo ~seed ~size:nodes model))
  in
  dense_at 800;
  dense_at 10_000;
  row ~kind:"dense" ~nodes:100_000 (fun () -> None);
  lazy_at 800;
  lazy_at 10_000;
  lazy_at 100_000;
  (* A bounded memo trades a few MB of RSS for repeat-query hits. *)
  lazy_at ~kind:"lazy+memo" ~memo:65_536 100_000;
  Table.print table;
  Report.note
    "dense rows pay the full triangle once at build time; lazy rows \
     re-synthesize every query from (seed, i, j) — memoize with \
     --backend lazy + a memo bound when workloads revisit pairs"

let register () =
  Registry.register "backend"
    "Delay backends: dense vs lazy memory and per-query cost"
    backend_scaling
