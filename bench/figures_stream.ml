(* Live-streaming swarm: not a paper figure — the locality-aware P2P
   streaming experiment behind lib/stream, the repo's first scenario
   judged by an application metric (missed playback deadlines).  One
   arm per neighbor-selection policy over the identical world (same
   membership, same join order, same churn schedule, same route
   flaps): locality-unaware random attachment, Vivaldi coordinate
   ranking, and the TIV-alert-aware ranking that verifies candidates
   and quarantines likely-shrunk edges.  Companion to
   test/test_stream.ml and the committed BENCH_stream.md. *)

module Rng = Tivaware_util.Rng
module Table = Tivaware_util.Table
module Stats = Tivaware_util.Stats
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Churn = Tivaware_measure.Churn
module Dynamics = Tivaware_measure.Dynamics
module Probe_stats = Tivaware_measure.Probe_stats
module System = Tivaware_vivaldi.System
module Selectors = Tivaware_core.Selectors
module Backend = Tivaware_backend.Delay_backend
module Multicast = Tivaware_overlay.Multicast
module Select = Tivaware_stream.Select
module Swarm = Tivaware_stream.Swarm

(* One policy arm, mirroring `tivlab stream --churn --dynamics
   routeflap`: the swarm engine is rebuilt per arm with the same
   seeds, so every policy sees the identical churn schedule and route
   flaps; coordinate-consuming policies pay for their embedding on a
   separate maintenance engine (same world, seed + 1) whose probes are
   reported as maintenance overhead. *)
let arm ctx policy_kind =
  let backend = Backend.dense (Context.matrix ctx) in
  let seed = ctx.Context.seed in
  let config engine_seed =
    {
      Engine.fault = Fault.default;
      profile = None;
      churn = Some { Churn.default with Churn.fraction = 0.2; seed = engine_seed };
      dynamics =
        Some
          {
            Dynamics.default with
            Dynamics.route_flap = Some Dynamics.default_route_flap;
            seed = engine_seed;
          };
      budget = None;
      cache_ttl = None;
      cache_capacity = None;
      charge_time = false;
      seed = engine_seed;
    }
  in
  let engine = Backend.engine ~config:(config seed) backend in
  let maintenance = ref None in
  let predictor () =
    let e = Backend.engine ~config:(config (seed + 1)) backend in
    let system = Selectors.embed_vivaldi_engine (Rng.create (seed + 1)) e in
    maintenance := Some e;
    fun i j -> System.predicted system i j
  in
  let select =
    match policy_kind with
    | `Naive -> Select.naive ~seed:(seed + 23)
    | `Vivaldi -> Select.coordinate (predictor ())
    | `Alert -> Select.alert (predictor ())
  in
  let sw =
    Swarm.create
      ~config:{ Swarm.default_config with Swarm.seed = seed + 23 }
      ~select ~backend ~engine ()
  in
  let result = Swarm.run sw in
  let stats = Engine.stats engine in
  let fg_probes =
    Probe_stats.label_count stats "stream"
    + Probe_stats.label_count stats "stream_repair"
  in
  let maint_probes =
    match !maintenance with
    | None -> 0
    | Some e -> Probe_stats.label_count (Engine.stats e) "vivaldi"
  in
  (select, result, fg_probes, maint_probes)

let stream ctx =
  Report.section "stream"
    "P2P live streaming over the delay space: neighbor selection \
     policy vs missed playback deadlines under churn and route flaps";
  Report.expectation
    "the TIV-alert-aware policy beats locality-unaware attachment on \
     chunk-miss rate (random parents sit several long hops from the \
     source, so chunks overrun the playback deadline) while keeping \
     the tree's delivery stretch near the coordinate-ranked tree's";
  let table =
    Table.create
      ~header:
        [
          "policy"; "on time"; "missed"; "miss rate"; "stretch p50";
          "stretch p90"; "dup"; "overhead"; "pull hits"; "regrafts";
          "fg probes"; "maint probes";
        ]
  in
  let row kind =
    let select, r, fg, maint = arm ctx kind in
    let st = r.Swarm.stretches in
    Table.add_row table
      [
        Select.name select;
        string_of_int r.Swarm.on_time;
        string_of_int r.Swarm.missed;
        Printf.sprintf "%.4f" r.Swarm.miss_rate;
        Printf.sprintf "%.2f" (if st = [||] then 0. else Stats.median st);
        Printf.sprintf "%.2f" (if st = [||] then 0. else Stats.percentile st 90.);
        string_of_int r.Swarm.duplicates;
        Printf.sprintf "%.3f" r.Swarm.overhead_ratio;
        string_of_int r.Swarm.pull_hits;
        string_of_int r.Swarm.repair.Swarm.reattached;
        string_of_int fg;
        string_of_int maint;
      ];
    r
  in
  let naive = row `Naive in
  let vivaldi = row `Vivaldi in
  let alert = row `Alert in
  Table.print table;
  Report.measured
    "chunk-miss rate %.4f alert vs %.4f naive (vivaldi %.4f); final \
     alert tree mean edge %.1f ms vs %.1f ms naive"
    alert.Swarm.miss_rate naive.Swarm.miss_rate vivaldi.Swarm.miss_rate
    alert.Swarm.tree_metrics.Multicast.mean_edge_ms
    naive.Swarm.tree_metrics.Multicast.mean_edge_ms;
  Report.note
    "all arms replay the identical churn schedule and route flaps; \
     the naive tree's long random edges turn every flap and re-graft \
     into a burst of deadline overruns, while alert's verified short \
     edges leave slack inside the deadline for pull recovery"

let register () =
  Registry.register "stream"
    "Streaming swarm: neighbor selection vs chunk-miss rate under churn"
    stream
