(* Bechamel microbenchmarks of the hot kernels.  Run with --perf; they
   are excluded from the default figure run to keep it fast. *)

open Bechamel
open Toolkit
module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Severity = Tivaware_tiv.Severity
module Shortest_path = Tivaware_delay_space.Shortest_path
module System = Tivaware_vivaldi.System
module Ring = Tivaware_meridian.Ring
module Overlay = Tivaware_meridian.Overlay
module Query = Tivaware_meridian.Query
module Generator = Tivaware_topology.Generator
module Datasets = Tivaware_topology.Datasets
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Budget = Tivaware_measure.Budget

(* Probe-engine kernels: the per-lookup cost the measurement plane adds
   over a raw Matrix.get.  Collected separately into BENCH_measure.json. *)
let measure_tests m =
  let oracle_engine = Engine.of_matrix m in
  let faulty_engine =
    Engine.of_matrix
      ~config:
        {
          Engine.default_config with
          Engine.fault = { Fault.default with Fault.loss = 0.1; jitter = 0.2 };
          seed = 6;
        }
      m
  in
  let cached_engine =
    Engine.of_matrix
      ~config:{ Engine.default_config with Engine.cache_ttl = Some 1e9 }
      m
  in
  (* Warm the cache so the kernel measures the pure hit path. *)
  for i = 0 to 49 do
    for j = 0 to 49 do
      if i <> j then ignore (Engine.rtt cached_engine i j)
    done
  done;
  let lru_engine =
    Engine.of_matrix
      ~config:
        {
          Engine.default_config with
          Engine.cache_ttl = Some 1e9;
          cache_capacity = Some 256;
        }
      m
  in
  (* Warm past capacity so every lookup exercises the LRU list: hits
     move entries to the front, misses insert and evict the tail. *)
  for i = 0 to 49 do
    for j = 0 to 49 do
      if i <> j then ignore (Engine.rtt lru_engine i j)
    done
  done;
  let adaptive_engine =
    Engine.of_matrix
      ~config:
        {
          Engine.default_config with
          Engine.fault =
            {
              Fault.default with
              Fault.loss = 0.2;
              retries = 3;
              policy = Fault.adaptive ~target_failure:0.01 ();
            };
          seed = 8;
        }
      m
  in
  let budget = Budget.create (Budget.per_node ~capacity:1e12 ~rate:1.) ~n:200 in
  let rng = Rng.create 7 in
  [
    Test.make ~name:"measure/probe-oracle"
      (Staged.stage (fun () ->
           ignore (Engine.rtt oracle_engine (Rng.int rng 200) (Rng.int rng 200))));
    Test.make ~name:"measure/probe-faulty"
      (Staged.stage (fun () ->
           ignore (Engine.rtt faulty_engine (Rng.int rng 200) (Rng.int rng 200))));
    Test.make ~name:"measure/cache-hit"
      (Staged.stage (fun () ->
           ignore (Engine.rtt cached_engine (Rng.int rng 50) (Rng.int rng 50))));
    Test.make ~name:"measure/lru-cache-hit"
      (Staged.stage (fun () ->
           ignore (Engine.rtt lru_engine (Rng.int rng 50) (Rng.int rng 50))));
    Test.make ~name:"measure/adaptive-retry"
      (Staged.stage (fun () ->
           ignore
             (Engine.rtt adaptive_engine (Rng.int rng 200) (Rng.int rng 200))));
    Test.make ~name:"measure/budget-check"
      (Staged.stage (fun () ->
           ignore (Budget.try_take budget ~now:0. (Rng.int rng 200))));
    Test.make ~name:"measure/matrix-get-baseline"
      (Staged.stage (fun () ->
           ignore (Matrix.get m (Rng.int rng 200) (Rng.int rng 200))));
  ]

let tests () =
  let data = Datasets.generate ~size:200 ~seed:99 Datasets.Ds2 in
  let m = data.Generator.matrix in
  let system = System.create (Rng.create 1) m in
  System.run system ~rounds:50;
  let rng = Rng.create 2 in
  let meridian_nodes = Rng.sample_indices rng ~n:(Matrix.size m) ~k:100 in
  let overlay =
    Overlay.build (Rng.create 3) m Ring.default_config ~meridian_nodes
  in
  let query_rng = Rng.create 4 in
  [
    Test.make ~name:"rng/int" (Staged.stage (fun () -> Rng.int query_rng 1000));
    Test.make ~name:"vivaldi/round"
      (Staged.stage (fun () -> System.round system));
    Test.make ~name:"severity/edge"
      (Staged.stage (fun () -> ignore (Severity.edge m 0 1)));
    Test.make ~name:"dijkstra/single-source"
      (Staged.stage (fun () -> ignore (Shortest_path.single_source m 0)));
    Test.make ~name:"meridian/query"
      (Staged.stage (fun () ->
           let start = meridian_nodes.(Rng.int query_rng 100) in
           let target = Rng.int query_rng (Matrix.size m) in
           if Overlay.is_meridian overlay start
              && (not (Overlay.is_meridian overlay target))
              && not (Matrix.is_missing m start target)
           then ignore (Query.closest overlay m ~start ~target)));
    Test.make ~name:"generator/200-nodes"
      (Staged.stage (fun () ->
           ignore (Datasets.generate ~size:200 ~seed:5 Datasets.Ds2)));
  ]
  @ measure_tests m

(* Strip bechamel's group prefix ("kernel/name" -> "name"). *)
let kernel_name name =
  match String.index_opt name '/' with
  | Some i when String.sub name 0 i = "kernel" ->
    String.sub name (i + 1) (String.length name - i - 1)
  | _ -> name

let write_measure_json estimates =
  let module Json = Tivaware_obs.Json in
  let measure =
    List.filter
      (fun (name, _) -> String.length name >= 8 && String.sub name 0 8 = "measure/")
      estimates
  in
  if measure <> [] then begin
    let kernels =
      List.map
        (fun (name, ns) ->
          (* Two decimals is far below run-to-run noise and keeps the
             committed baseline diff-friendly. *)
          Json.Obj
            [
              ("name", Json.String name);
              ("ns_per_run", Json.number (Float.round (ns *. 100.) /. 100.));
            ])
        measure
    in
    let doc = Json.Obj [ ("kernels", Json.List kernels) ] in
    let oc = open_out "BENCH_measure.json" in
    output_string oc (Json.to_string doc);
    output_string oc "\n";
    close_out oc;
    Printf.printf "wrote BENCH_measure.json (%d kernels)\n" (List.length measure)
  end

let run () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:(Some 500) () in
  (* Run each test individually, print the OLS-estimated monotonic time
     per run, and collect the estimates. *)
  let estimates = ref [] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let ols =
        Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |])
          (Instance.monotonic_clock) results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] ->
            Printf.printf "%-28s %12.1f ns/run\n" name est;
            estimates := (kernel_name name, est) :: !estimates
          | _ -> Printf.printf "%-28s (no estimate)\n" name)
        ols)
    (List.map (fun t -> Test.make_grouped ~name:"kernel" [ t ]) (tests ()));
  write_measure_json (List.rev !estimates)
