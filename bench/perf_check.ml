(* Bench-regression gate: compare a freshly measured BENCH_measure.json
   against the committed baseline and fail on a real slowdown.

     perf_check BASELINE FRESH

   Raw ns/run numbers are not comparable across machines, so when both
   files carry the [measure/matrix-get-baseline] kernel every timing is
   first normalized by it — a uniformly 2x-slower CI runner then cancels
   out and only *relative* regressions of the measurement plane remain.
   A kernel present in the baseline but missing from the fresh run is a
   failure too (a silently dropped benchmark is not a speedup). *)

module Json = Tivaware_obs.Json

(* The single declaration of the allowed slowdown: a kernel may be at
   most 25% slower (after normalization) than the committed baseline. *)
let tolerance = 0.25

let baseline_kernel = "measure/matrix-get-baseline"

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("perf_check: " ^ s); exit 1) fmt

let read_file path =
  try
    let ic = open_in_bin path in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    s
  with Sys_error msg -> fail "%s" msg

let kernels_of path =
  let doc =
    try Json.of_string (read_file path)
    with Failure msg -> fail "%s: %s" path msg
  in
  match Json.member "kernels" doc with
  | Some (Json.List ks) ->
    List.map
      (fun k ->
        match (Json.member "name" k, Option.bind (Json.member "ns_per_run" k) Json.to_float) with
        | Some (Json.String name), Some ns when ns > 0. -> (name, ns)
        | _ -> fail "%s: malformed kernel entry" path)
      ks
  | _ -> fail "%s: no \"kernels\" array" path

let () =
  let baseline_path, fresh_path =
    match Sys.argv with
    | [| _; b; f |] -> (b, f)
    | _ ->
      prerr_endline "usage: perf_check BASELINE FRESH";
      exit 2
  in
  let baseline = kernels_of baseline_path in
  let fresh = kernels_of fresh_path in
  (* Normalize by the matrix-get kernel when both runs carry it. *)
  let norm kernels =
    match List.assoc_opt baseline_kernel kernels with
    | Some ns when List.mem_assoc baseline_kernel baseline
                   && List.mem_assoc baseline_kernel fresh -> ns
    | _ -> 1.
  in
  let base_unit = norm baseline and fresh_unit = norm fresh in
  if base_unit <> 1. then
    Printf.printf "normalizing by %s (baseline %.2f ns, fresh %.2f ns)\n"
      baseline_kernel base_unit fresh_unit;
  let failures = ref 0 in
  List.iter
    (fun (name, base_ns) ->
      match List.assoc_opt name fresh with
      | None ->
        incr failures;
        Printf.printf "FAIL %-32s missing from fresh run\n" name
      | Some fresh_ns ->
        let ratio = fresh_ns /. fresh_unit /. (base_ns /. base_unit) in
        let verdict = if ratio > 1. +. tolerance then "FAIL" else "ok  " in
        if verdict = "FAIL" then incr failures;
        Printf.printf "%s %-32s %9.2f -> %9.2f ns/run  (%+.0f%%)\n" verdict
          name base_ns fresh_ns ((ratio -. 1.) *. 100.))
    baseline;
  if !failures > 0 then
    fail "%d kernel(s) regressed beyond %.0f%%" !failures (tolerance *. 100.)
  else
    Printf.printf "all %d kernels within %.0f%% of baseline\n"
      (List.length baseline) (tolerance *. 100.)
