(* Benchmark harness entry point.

   Default: regenerate every figure of the paper (plus the ablations) on
   the shared synthetic DS2-like world and print paper-style series.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --list       # list experiment ids
     dune exec bench/main.exe -- --only fig14 --only fig24
     dune exec bench/main.exe -- --size 1200 --seed 7
     dune exec bench/main.exe -- --json       # also write BENCH_figures.json
     dune exec bench/main.exe -- --perf       # bechamel microbenchmarks *)

module Obs = Tivaware_obs

let () =
  let only = ref [] in
  let size = ref 560 in
  let seed = ref 2007 in
  let list_only = ref false in
  let perf = ref false in
  let json = ref false in
  let spec =
    [
      ("--only", Arg.String (fun s -> only := s :: !only), "ID run only this experiment (repeatable)");
      ("--size", Arg.Set_int size, "N DS2-like node count (default 560)");
      ("--seed", Arg.Set_int seed, "N master random seed (default 2007)");
      ("--list", Arg.Set list_only, " list experiment ids and exit");
      ("--json", Arg.Set json, " write per-experiment wall times to BENCH_figures.json");
      ("--perf", Arg.Set perf, " run bechamel microbenchmarks instead of figures");
    ]
  in
  Arg.parse spec
    (fun anon -> raise (Arg.Bad ("unexpected argument " ^ anon)))
    "tivaware benchmark harness";
  Figures_tiv.register ();
  Figures_vivaldi.register ();
  Figures_meridian.register ();
  Figures_strawman.register ();
  Figures_alert.register ();
  Figures_tivaware.register ();
  Figures_measure.register ();
  Figures_repair.register ();
  Figures_stabilize.register ();
  Figures_backend.register ();
  Figures_service.register ();
  Figures_store.register ();
  Figures_stream.register ();
  Ablations.register ();
  Extensions.register ();
  if !perf then Perf.run ()
  else if !list_only then
    List.iter
      (fun e -> Printf.printf "%-16s %s\n" e.Registry.id e.Registry.title)
      (Registry.all ())
  else begin
    let reg = Obs.Registry.create () in
    let ctx = Context.create ~seed:!seed ~size:!size ~obs:reg () in
    let entries =
      match !only with [] -> Registry.all () | ids -> Registry.find ids
    in
    if entries = [] then begin
      prerr_endline "no matching experiments; try --list";
      exit 1
    end;
    Printf.printf
      "tivaware bench: %d experiments, DS2-like size=%d seed=%d\n"
      (List.length entries) !size !seed;
    let t0 = Sys.time () in
    List.iter
      (fun e ->
        let start = Sys.time () in
        e.Registry.run ctx;
        let dt = Sys.time () -. start in
        Obs.Gauge.set
          (Obs.Registry.gauge reg
             ~labels:[ ("experiment", e.Registry.id) ]
             "bench.seconds")
          dt;
        Printf.printf "[%s done in %.1fs]\n" e.Registry.id dt)
      entries;
    Printf.printf "\nall experiments done in %.1fs (cpu)\n" (Sys.time () -. t0);
    if !json then begin
      Obs.Gauge.set (Obs.Registry.gauge reg "bench.total_seconds") (Sys.time () -. t0);
      Obs.Gauge.set (Obs.Registry.gauge reg "bench.size") (float_of_int !size);
      Obs.Gauge.set (Obs.Registry.gauge reg "bench.seed") (float_of_int !seed);
      Obs.Summary.write reg "BENCH_figures.json";
      Printf.printf "wrote BENCH_figures.json (%d experiments)\n"
        (List.length entries)
    end
  end
