(* Dynamics and repair: not paper figures — extensions quantifying how
   time-varying network conditions move the paper's alert quality, and
   what churn-aware repair buys the protocol layers at default churn
   rates.  Companion to the test/test_repair.ml liveness suite. *)

module Rng = Tivaware_util.Rng
module Table = Tivaware_util.Table
module Matrix = Tivaware_delay_space.Matrix
module Ring = Tivaware_meridian.Ring
module Query = Tivaware_meridian.Query
module Overlay = Tivaware_meridian.Overlay
module Eval = Tivaware_tiv.Eval
module System = Tivaware_vivaldi.System
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Churn = Tivaware_measure.Churn
module Dynamics = Tivaware_measure.Dynamics
module Probe_stats = Tivaware_measure.Probe_stats
module Chord = Tivaware_dht.Chord
module Id_space = Tivaware_dht.Id_space

let engine_for ctx ?churn ?dynamics ~loss ~jitter () =
  Engine.of_matrix
    ~config:
      {
        Engine.fault = { Fault.default with Fault.loss; jitter; retries = 1 };
        profile = None;
        churn;
        dynamics;
        budget = None;
        cache_ttl = None;
        cache_capacity = None;
        charge_time = false;
        seed = ctx.Context.seed + 61;
      }
    (Context.matrix ctx)

(* ------------------------------------------------------------------ *)
(* Alert precision over the diurnal cycle                              *)

let dynamics ctx =
  Report.section "dynamics"
    "Time-varying profiles: TIV-alert precision over a diurnal cycle";
  Report.expectation
    "accuracy/recall at the loss/jitter peak (t=T/4) drop below the \
     static row and recover in the trough (t=3T/4); a route-flap \
     engine degrades accuracy by inflating measured RTTs";
  let system = Context.vivaldi ctx in
  let predicted i j = System.predicted system i j in
  let severity = Context.severity ctx in
  let evaluate engine =
    List.hd
      (Eval.evaluate_engine ~engine ~predicted ~severity ~worst_fraction:0.1
         ~thresholds:[ 0.5 ])
  in
  let table =
    Table.create
      ~header:[ "engine"; "clock"; "alerts"; "accuracy"; "recall"; "issued"; "lost" ]
  in
  let row label engine t =
    Engine.advance_to engine t;
    let p = evaluate engine in
    let st = Engine.stats engine in
    Table.add_row table
      [
        label;
        Printf.sprintf "%.0f" t;
        string_of_int p.Eval.alerts;
        Printf.sprintf "%.3f" p.Eval.accuracy;
        Printf.sprintf "%.3f" p.Eval.recall;
        string_of_int st.Probe_stats.issued;
        string_of_int st.Probe_stats.lost;
      ]
  in
  row "static" (engine_for ctx ~loss:0.05 ~jitter:0.1 ()) 0.;
  let period = 240. in
  let diurnal =
    {
      Dynamics.diurnal =
        Some
          {
            Dynamics.period;
            loss_amplitude = 0.8;
            jitter_amplitude = 0.8;
            phase = 0.;
          };
      route_flap = None;
      seed = ctx.Context.seed + 67;
    }
  in
  List.iter
    (fun frac ->
      (* Fresh engine per phase point so each row is a clean snapshot
         of the cycle, not an accumulation. *)
      row "diurnal"
        (engine_for ctx ~dynamics:diurnal ~loss:0.05 ~jitter:0.1 ())
        (frac *. period))
    [ 0.; 0.25; 0.5; 0.75; 1. ];
  let flap =
    {
      Dynamics.diurnal = None;
      route_flap = Some { Dynamics.rate = 0.05; max_extra = 60. };
      seed = ctx.Context.seed + 67;
    }
  in
  row "routeflap"
    (engine_for ctx ~dynamics:flap ~loss:0.05 ~jitter:0.1 ())
    (period /. 2.);
  Table.print table

(* ------------------------------------------------------------------ *)
(* Repair ON vs OFF at default churn rates                             *)

(* One simulated service run: a churning engine advanced through
   [steps] maintenance rounds.  With repair ON the Meridian overlay
   runs ring maintenance and Chord runs successor healing each round;
   OFF leaves both structures as built.  The workload is identical in
   both arms (same seeds, same churn schedule): Meridian clients query
   through a start referred from a live host's rings — eviction is what
   keeps the referral pool live — and Chord lookups count as correct
   when they terminate at a node that is actually up. *)
let repair_arm ctx ~on =
  let m = Context.matrix ctx in
  let n = Matrix.size m in
  let churn = { Churn.default with Churn.seed = ctx.Context.seed + 71 } in
  let e = engine_for ctx ~churn ~loss:0. ~jitter:0. () in
  let c = Option.get (Engine.churn e) in
  let nodes =
    Rng.sample_indices (Context.rng ctx 73) ~n ~k:(Context.meridian_count_ideal ctx)
  in
  let overlay =
    Overlay.build (Context.rng ctx 74) m (Ring.unlimited_config n)
      ~meridian_nodes:nodes
  in
  let chord = Chord.build_engine ~successor_list:8 e in
  let is_meridian s = Array.exists (( = ) s) nodes in
  let q_ok = ref 0 and q_total = ref 0 in
  let l_ok = ref 0 and l_total = ref 0 in
  for step = 1 to 8 do
    Engine.advance_to e (30. *. float_of_int step);
    if on then begin
      ignore (Overlay.repair_engine overlay e);
      ignore (Chord.heal_engine chord e)
    end;
    (* Referral pool: meridian members a live host still carries in its
       rings.  Without maintenance, dead members linger and get
       referred; with it, referrals are live and revived members come
       back after re-entry. *)
    let pool =
      let seen = Hashtbl.create 64 in
      Array.iter
        (fun host ->
          if Churn.is_up c host then
            List.iter
              (fun mb ->
                if is_meridian mb.Overlay.id then
                  Hashtbl.replace seen mb.Overlay.id ())
              (Overlay.all_members overlay host))
        nodes;
      Array.of_list (Hashtbl.fold (fun s () acc -> s :: acc) seen [])
    in
    Array.sort compare pool;
    let pick = Rng.create ((ctx.Context.seed * 131) + step) in
    let tries = ref 0 in
    while !tries < 60 && Array.length pool > 0 do
      incr tries;
      let start = pool.(Rng.int pick (Array.length pool)) in
      let target = Rng.int pick n in
      if
        (not (is_meridian target))
        && Churn.is_up c target
        && not (Matrix.is_missing m start target)
      then begin
        incr q_total;
        let o = Query.closest_engine overlay e ~start ~target in
        if not (Float.is_nan o.Query.chosen_delay) then incr q_ok
      end
    done;
    let lk = Rng.create ((ctx.Context.seed * 137) + step) in
    let lookups = ref 0 in
    while !lookups < 60 do
      let source = Rng.int lk n in
      if Churn.is_up c source then begin
        incr lookups;
        incr l_total;
        let key =
          Id_space.add (Id_space.of_node (Rng.int lk n)) (Rng.int lk 1_000_000)
        in
        let o = Chord.lookup chord m ~source ~key in
        if Churn.is_up c o.Chord.owner then incr l_ok
      end
    done
  done;
  (!q_ok, !q_total, !l_ok, !l_total, Engine.stats e)

let repair ctx =
  Report.section "repair"
    "Churn-aware repair: Meridian query success and Chord lookup \
     correctness, repair ON vs OFF";
  Report.expectation
    "at default churn rates both service metrics are strictly better \
     with repair ON, and the repair planes' probe costs appear in the \
     per-label accounting";
  let table =
    Table.create
      ~header:
        [
          "repair"; "meridian ok"; "success"; "chord ok"; "correct";
          "issued"; "down";
        ]
  in
  let arm label ~on =
    let q_ok, q_total, l_ok, l_total, st = repair_arm ctx ~on in
    Table.add_row table
      [
        label;
        Printf.sprintf "%d/%d" q_ok q_total;
        Printf.sprintf "%.1f%%" (100. *. float_of_int q_ok /. float_of_int (max 1 q_total));
        Printf.sprintf "%d/%d" l_ok l_total;
        Printf.sprintf "%.1f%%" (100. *. float_of_int l_ok /. float_of_int (max 1 l_total));
        string_of_int st.Probe_stats.issued;
        string_of_int st.Probe_stats.down;
      ];
    st
  in
  let _ = arm "off" ~on:false in
  let st = arm "on" ~on:true in
  Table.print table;
  Report.note "repair-plane probe accounting (ON arm):";
  List.iter
    (fun (l, k) -> Printf.printf "  %-16s %d\n" l k)
    (Probe_stats.labels st)

let register () =
  Registry.register "dynamics"
    "Time-varying profiles: alert precision over a diurnal cycle" dynamics;
  Registry.register "repair"
    "Churn-aware repair ON vs OFF at default churn rates" repair
