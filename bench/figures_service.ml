(* Service-harness scaling: sustained-load throughput vs domain count.

   One fixed spec (the shared DS2-like space, default mixed workload,
   closed loop) is served by the tivd driver at increasing domain
   counts.  The summary is deterministic per domain count — the wall
   clock is the only thing that may move between runs — so the latency
   columns double as a drift check against the committed
   BENCH_service.md. *)

module Table = Tivaware_util.Table
module Backend = Tivaware_backend.Delay_backend
module Engine = Tivaware_measure.Engine
module Obs = Tivaware_obs
module Workload = Tivaware_service.Workload
module Shard = Tivaware_service.Shard
module Driver = Tivaware_service.Driver

let quantile result kind q =
  Obs.Histogram.quantile
    (Obs.Registry.histogram result.Driver.obs
       ~labels:[ ("kind", Workload.kind_label kind) ]
       ~edges:Shard.latency_edges "service.latency_ms")
    q

let served result =
  Array.fold_left
    (fun acc k ->
      acc
      +. Obs.Counter.value
           (Obs.Registry.counter result.Driver.obs
              ~labels:[ ("kind", Workload.kind_label k) ]
              "service.queries"))
    0. Workload.kinds

let service_scaling ctx =
  Report.section "service"
    "Service harness: sustained-load qps vs worker domains";
  Report.expectation
    "per-domain-count summaries are deterministic (the latency columns \
     never move); wall-clock qps scales with domains up to the host's \
     core count and is flat beyond it";
  let m = Context.matrix ctx in
  let spec =
    {
      Shard.seed = ctx.Context.seed;
      engine_config = Engine.default_config;
      make_backend = (fun () -> Backend.dense m);
      meridian_count = 32;
      candidate_budget = None;
      beta = 0.5;
      rate = None;
      mix = Workload.default_mix;
      queries = 2000;
    }
  in
  let table =
    Table.create
      ~header:
        [
          "domains"; "wall_s"; "qps"; "speedup"; "closest p50/p99 ms";
          "dht p50/p99 ms";
        ]
  in
  let base_qps = ref nan in
  List.iter
    (fun domains ->
      let t0 = Unix.gettimeofday () in
      let result = Driver.run ~domains spec in
      let wall = Unix.gettimeofday () -. t0 in
      let qps = served result /. wall in
      if Float.is_nan !base_qps then base_qps := qps;
      Table.add_row table
        [
          string_of_int domains;
          Printf.sprintf "%.2f" wall;
          Printf.sprintf "%.0f" qps;
          Printf.sprintf "%.2fx" (qps /. !base_qps);
          Printf.sprintf "%.1f / %.1f"
            (quantile result Workload.Closest 0.5)
            (quantile result Workload.Closest 0.99);
          Printf.sprintf "%.1f / %.1f"
            (quantile result Workload.Dht_lookup 0.5)
            (quantile result Workload.Dht_lookup 0.99);
        ];
      Obs.Gauge.set
        (Obs.Registry.gauge (Context.obs ctx)
           ~labels:[ ("domains", string_of_int domains) ]
           "service.bench.qps")
        qps)
    [ 1; 2; 4 ];
  Table.print table;
  Report.note
    "host reports %d usable core(s) (Domain.recommended_domain_count); \
     speedup saturates there — single-core hosts serialize the domains and \
     show ~1x throughout"
    (Domain.recommended_domain_count ())

let register () =
  Registry.register "service"
    "Service harness: sustained-load qps vs worker domains" service_scaling
