(* Measurement-plane degradation sweep: what the paper's oracle-delay
   results look like when every probe crosses a lossy, jittery network
   under a probe budget.  Not a paper figure — an ablation of the
   measurement assumptions behind Figures 15 and 20. *)

module Rng = Tivaware_util.Rng
module Table = Tivaware_util.Table
module Matrix = Tivaware_delay_space.Matrix
module Stats = Tivaware_util.Stats
module Ring = Tivaware_meridian.Ring
module Query = Tivaware_meridian.Query
module Overlay = Tivaware_meridian.Overlay
module Online = Tivaware_meridian.Online
module Sim = Tivaware_eventsim.Sim
module Eval = Tivaware_tiv.Eval
module Experiment = Tivaware_core.Experiment
module Selectors = Tivaware_core.Selectors
module System = Tivaware_vivaldi.System
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Profile = Tivaware_measure.Profile
module Churn = Tivaware_measure.Churn
module Generator = Tivaware_topology.Generator
module Probe_stats = Tivaware_measure.Probe_stats
module Budget = Tivaware_measure.Budget

(* (label, loss, jitter) sweep points.  Retries fixed at 1 so loss also
   shows up as extra issued probes, not only as failures. *)
let sweep =
  [
    ("oracle", 0., 0.);
    ("mild", 0.05, 0.1);
    ("harsh", 0.1, 0.2);
  ]

let engine_for ctx ~loss ~jitter ?(retries = 1) ?(policy = Fault.Fixed) ?profile
    ?budget ?cache_ttl ?cache_capacity () =
  let fault = { Fault.default with Fault.loss; jitter; retries; policy } in
  Engine.of_matrix
    ~config:
      {
        Engine.fault;
        profile;
        churn = None;
        dynamics = None;
        budget;
        cache_ttl;
        cache_capacity;
        charge_time = false;
        seed = ctx.Context.seed + 31;
      }
    (Context.matrix ctx)

let measure ctx =
  Report.section "measure"
    "Measurement plane: Meridian and the TIV alert under probe loss/jitter";
  Report.expectation
    "oracle row reproduces the no-engine results; loss inflates probe \
     counts and failures, jitter degrades penalties and alert accuracy";
  let m = Context.matrix ctx in
  let meridian_count = Context.meridian_count_ideal ctx in
  let cfg = Ring.unlimited_config (Matrix.size m) in

  (* Meridian closest-neighbor queries through the engine. *)
  let table =
    Table.create
      ~header:
        [
          "faults"; "perfect"; "p50_penalty"; "p90_penalty"; "failures";
          "probes/query"; "issued"; "lost"; "retried";
        ]
  in
  List.iter
    (fun (label, loss, jitter) ->
      let engine = engine_for ctx ~loss ~jitter () in
      let r =
        Experiment.run_meridian
          (Context.rng ctx (41 + int_of_float (loss *. 1000.)))
          m ~runs:3 ~termination:Query.Any_improvement ~engine ~meridian_count
          ~build:(Selectors.meridian_build m cfg) ()
      in
      let penalties = r.Experiment.base.Experiment.penalties in
      let s = Stats.summarize penalties in
      let perfect =
        let exact = Array.fold_left (fun a p -> if p = 0. then a + 1 else a) 0 penalties in
        100. *. float_of_int exact /. float_of_int (max 1 (Array.length penalties))
      in
      let st = Engine.stats engine in
      Table.add_row table
        [
          label;
          Printf.sprintf "%.1f%%" perfect;
          Printf.sprintf "%.2f" s.Stats.p50;
          Printf.sprintf "%.2f" s.Stats.p90;
          string_of_int r.Experiment.base.Experiment.failures;
          Printf.sprintf "%.1f"
            (float_of_int r.Experiment.probes
            /. float_of_int (max 1 r.Experiment.queries));
          string_of_int st.Probe_stats.issued;
          string_of_int st.Probe_stats.lost;
          string_of_int st.Probe_stats.retried;
        ])
    sweep;
  Table.print table;

  (* Per-link profile sweep: the same harsh base rates spread uniformly,
     concentrated by topology (lossy access links, jittery inter-cluster
     paths) or scattered per link at random — plus node churn on top.
     Heterogeneity, not the average rate, is what moves the tail. *)
  Report.note
    "per-link profiles at equal base rates (loss 0.1, jitter 0.2), \
     Meridian queries; churn row adds 20%% of nodes cycling up/down:";
  let cluster_of = (Context.ds2 ctx).Generator.cluster_of in
  let profile_rows =
    [
      ("uniform", None, None);
      ( "topo",
        Some (Profile.topology ~loss:0.1 ~jitter:0.2 ~cluster_of ()),
        None );
      ( "random",
        Some (Profile.random ~loss:0.1 ~jitter:0.2 ~seed:(ctx.Context.seed + 7) ()),
        None );
      ( "random+churn",
        Some (Profile.random ~loss:0.1 ~jitter:0.2 ~seed:(ctx.Context.seed + 7) ()),
        Some { Churn.default with Churn.seed = ctx.Context.seed + 9 } );
    ]
  in
  let profile_table =
    Table.create
      ~header:
        [
          "profile"; "perfect"; "p50_penalty"; "p90_penalty"; "failures";
          "issued"; "lost"; "down";
        ]
  in
  List.iter
    (fun (label, profile, churn) ->
      let engine =
        let fault = { Fault.default with Fault.loss = 0.1; jitter = 0.2; retries = 1 } in
        Engine.of_matrix
          ~config:
            {
              Engine.fault;
              profile;
              churn;
              dynamics = None;
              budget = None;
              cache_ttl = None;
              cache_capacity = None;
              charge_time = false;
              seed = ctx.Context.seed + 31;
            }
          m
      in
      let r =
        Experiment.run_meridian (Context.rng ctx 42) m ~runs:3
          ~termination:Query.Any_improvement ~engine ~meridian_count
          ~build:(Selectors.meridian_build m cfg) ()
      in
      let penalties = r.Experiment.base.Experiment.penalties in
      let s = Stats.summarize penalties in
      let perfect =
        let exact = Array.fold_left (fun a p -> if p = 0. then a + 1 else a) 0 penalties in
        100. *. float_of_int exact /. float_of_int (max 1 (Array.length penalties))
      in
      let st = Engine.stats engine in
      Table.add_row profile_table
        [
          label;
          Printf.sprintf "%.1f%%" perfect;
          Printf.sprintf "%.2f" s.Stats.p50;
          Printf.sprintf "%.2f" s.Stats.p90;
          string_of_int r.Experiment.base.Experiment.failures;
          string_of_int st.Probe_stats.issued;
          string_of_int st.Probe_stats.lost;
          string_of_int st.Probe_stats.down;
        ])
    profile_rows;
  Table.print profile_table;

  (* TIV-alert accuracy/recall at the paper's mid threshold, with the
     ratio matrix probed through the engine. *)
  Report.note
    "TIV alert at threshold 0.5, worst-10%% ground truth, alert ratios \
     probed through the engine:";
  let system = Context.vivaldi ctx in
  let predicted i j = System.predicted system i j in
  let severity = Context.severity ctx in
  let alert_table =
    Table.create ~header:[ "faults"; "alerts"; "accuracy"; "recall"; "unmeasured" ]
  in
  List.iter
    (fun (label, loss, jitter) ->
      let engine = engine_for ctx ~loss ~jitter () in
      let points =
        Eval.evaluate_engine ~engine ~predicted ~severity ~worst_fraction:0.1
          ~thresholds:[ 0.5 ]
      in
      let p = List.hd points in
      let st = Engine.stats engine in
      Table.add_row alert_table
        [
          label;
          string_of_int p.Eval.alerts;
          Printf.sprintf "%.3f" p.Eval.accuracy;
          Printf.sprintf "%.3f" p.Eval.recall;
          string_of_int st.Probe_stats.failed;
        ])
    sweep;
  Table.print alert_table;

  (* Service mode: the TTL cache amortizes repeat Meridian probes under
     a per-node budget.  Same harsh faults, with and without cache. *)
  Report.note "service mode under harsh faults (budget 50 tokens @ 5/s per node):";
  let budget = Budget.per_node ~capacity:50. ~rate:5. in
  let svc_table =
    Table.create
      ~header:
        [
          "mode"; "p50_penalty"; "failures"; "issued"; "denied"; "hit";
          "stale"; "evicted";
        ]
  in
  List.iter
    (fun (mode, cache_ttl, cache_capacity) ->
      let engine =
        engine_for ctx ~loss:0.1 ~jitter:0.2 ~budget ?cache_ttl ?cache_capacity
          ()
      in
      let r =
        Experiment.run_meridian (Context.rng ctx 43) m ~runs:3
          ~termination:Query.Any_improvement ~engine ~meridian_count
          ~build:(Selectors.meridian_build m cfg) ()
      in
      let s = Stats.summarize r.Experiment.base.Experiment.penalties in
      let st = Engine.stats engine in
      Table.add_row svc_table
        [
          mode;
          Printf.sprintf "%.2f" s.Stats.p50;
          string_of_int r.Experiment.base.Experiment.failures;
          string_of_int st.Probe_stats.issued;
          string_of_int st.Probe_stats.denied;
          string_of_int st.Probe_stats.hits;
          string_of_int st.Probe_stats.stale;
          string_of_int st.Probe_stats.evicted;
        ])
    [
      ("on-demand", None, None);
      ("cached ttl=60", Some 60., None);
      ("cached ttl=60 cap=512", Some 60., Some 512);
    ];
  Table.print svc_table;

  (* Retry policies head to head under 20% loss: identical probe
     workload, fixed immediate retransmits vs adaptive backoff whose
     retry budget tracks the per-node loss estimate. *)
  Report.note
    "retry policies under 20%% loss (same workload; adaptive should \
     spend fewer attempts for a comparable success rate):";
  let policy_table =
    Table.create
      ~header:[ "policy"; "requests"; "issued"; "attempts/req"; "failed"; "success" ]
  in
  let n = Matrix.size m in
  List.iter
    (fun (label, retries, policy) ->
      let engine = engine_for ctx ~loss:0.2 ~jitter:0. ~retries ~policy () in
      let wl = Context.rng ctx 47 in
      let requests = 4000 in
      for _ = 1 to requests do
        let i = Rng.int wl n in
        let j = (i + 1 + Rng.int wl (n - 1)) mod n in
        ignore (Engine.rtt engine i j)
      done;
      let st = Engine.stats engine in
      Table.add_row policy_table
        [
          label;
          string_of_int st.Probe_stats.requests;
          string_of_int st.Probe_stats.issued;
          Printf.sprintf "%.2f"
            (float_of_int st.Probe_stats.issued /. float_of_int requests);
          string_of_int st.Probe_stats.failed;
          Printf.sprintf "%.1f%%"
            (100.
            *. float_of_int (requests - st.Probe_stats.failed)
            /. float_of_int requests);
        ])
    [
      ("fixed r=3", 3, Fault.Fixed);
      ("backoff r=3", 3, Fault.Backoff Fault.default_backoff);
      ("adaptive r<=3", 3, Fault.adaptive ~target_failure:0.01 ());
    ];
  Table.print policy_table;

  (* Probe-time-aware Meridian: the same online queries cost simulator
     time for every probe; loss and retries now show up as latency. *)
  Report.note
    "online query latency, probe time charged on the simulator clock \
     (faults should strictly increase virtual latency):";
  let nodes =
    Rng.sample_indices (Context.rng ctx 53) ~n ~k:(min meridian_count (n / 2))
  in
  let overlay =
    Overlay.build (Context.rng ctx 54) m cfg ~meridian_nodes:nodes
  in
  let online_table =
    Table.create
      ~header:[ "faults"; "queries"; "latency p50 ms"; "latency mean ms"; "probe_ms" ]
  in
  List.iter
    (fun (label, loss, jitter) ->
      let engine =
        engine_for ctx ~loss ~jitter
          ~policy:(Fault.Backoff Fault.default_backoff) ()
      in
      let sim = Sim.create () in
      Online.attach sim engine;
      let pick = Context.rng ctx 55 in
      let latencies = ref [] in
      let queries = 60 in
      for _ = 1 to queries do
        let client = Rng.int pick n in
        let start = nodes.(Rng.int pick (Array.length nodes)) in
        let target = Rng.int pick n in
        if
          (not (Overlay.is_meridian overlay target))
          && client <> start
          && not (Matrix.is_missing m client start)
        then begin
          let o =
            Online.closest_engine sim overlay engine ~client ~start ~target
          in
          latencies := o.Online.latency :: !latencies
        end
      done;
      let lat = Array.of_list !latencies in
      let st = Engine.stats engine in
      Table.add_row online_table
        [
          label;
          string_of_int (Array.length lat);
          Printf.sprintf "%.1f" (Stats.median lat);
          Printf.sprintf "%.1f" (Stats.mean lat);
          Printf.sprintf "%.0f" st.Probe_stats.probe_ms;
        ])
    sweep;
  Table.print online_table

let register () =
  Registry.register "measure"
    "Probe engine: degradation under loss/jitter, budgets, caching" measure
