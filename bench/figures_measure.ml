(* Measurement-plane degradation sweep: what the paper's oracle-delay
   results look like when every probe crosses a lossy, jittery network
   under a probe budget.  Not a paper figure — an ablation of the
   measurement assumptions behind Figures 15 and 20. *)

module Rng = Tivaware_util.Rng
module Table = Tivaware_util.Table
module Matrix = Tivaware_delay_space.Matrix
module Stats = Tivaware_util.Stats
module Ring = Tivaware_meridian.Ring
module Query = Tivaware_meridian.Query
module Eval = Tivaware_tiv.Eval
module Experiment = Tivaware_core.Experiment
module Selectors = Tivaware_core.Selectors
module System = Tivaware_vivaldi.System
module Engine = Tivaware_measure.Engine
module Fault = Tivaware_measure.Fault
module Budget = Tivaware_measure.Budget
module Probe_stats = Tivaware_measure.Probe_stats

(* (label, loss, jitter) sweep points.  Retries fixed at 1 so loss also
   shows up as extra issued probes, not only as failures. *)
let sweep =
  [
    ("oracle", 0., 0.);
    ("mild", 0.05, 0.1);
    ("harsh", 0.1, 0.2);
  ]

let engine_for ctx ~loss ~jitter ?budget ?cache_ttl () =
  let fault = { Fault.default with Fault.loss; jitter; retries = 1 } in
  Engine.of_matrix
    ~config:{ Engine.fault; budget; cache_ttl; seed = ctx.Context.seed + 31 }
    (Context.matrix ctx)

let measure ctx =
  Report.section "measure"
    "Measurement plane: Meridian and the TIV alert under probe loss/jitter";
  Report.expectation
    "oracle row reproduces the no-engine results; loss inflates probe \
     counts and failures, jitter degrades penalties and alert accuracy";
  let m = Context.matrix ctx in
  let meridian_count = Context.meridian_count_ideal ctx in
  let cfg = Ring.unlimited_config (Matrix.size m) in

  (* Meridian closest-neighbor queries through the engine. *)
  let table =
    Table.create
      ~header:
        [
          "faults"; "perfect"; "p50_penalty"; "p90_penalty"; "failures";
          "probes/query"; "issued"; "lost"; "retried";
        ]
  in
  List.iter
    (fun (label, loss, jitter) ->
      let engine = engine_for ctx ~loss ~jitter () in
      let r =
        Experiment.run_meridian
          (Context.rng ctx (41 + int_of_float (loss *. 1000.)))
          m ~runs:3 ~termination:Query.Any_improvement ~engine ~meridian_count
          ~build:(Selectors.meridian_build m cfg) ()
      in
      let penalties = r.Experiment.base.Experiment.penalties in
      let s = Stats.summarize penalties in
      let perfect =
        let exact = Array.fold_left (fun a p -> if p = 0. then a + 1 else a) 0 penalties in
        100. *. float_of_int exact /. float_of_int (max 1 (Array.length penalties))
      in
      let st = Engine.stats engine in
      Table.add_row table
        [
          label;
          Printf.sprintf "%.1f%%" perfect;
          Printf.sprintf "%.2f" s.Stats.p50;
          Printf.sprintf "%.2f" s.Stats.p90;
          string_of_int r.Experiment.base.Experiment.failures;
          Printf.sprintf "%.1f"
            (float_of_int r.Experiment.probes
            /. float_of_int (max 1 r.Experiment.queries));
          string_of_int st.Probe_stats.issued;
          string_of_int st.Probe_stats.lost;
          string_of_int st.Probe_stats.retried;
        ])
    sweep;
  Table.print table;

  (* TIV-alert accuracy/recall at the paper's mid threshold, with the
     ratio matrix probed through the engine. *)
  Report.note
    "TIV alert at threshold 0.5, worst-10%% ground truth, alert ratios \
     probed through the engine:";
  let system = Context.vivaldi ctx in
  let predicted i j = System.predicted system i j in
  let severity = Context.severity ctx in
  let alert_table =
    Table.create ~header:[ "faults"; "alerts"; "accuracy"; "recall"; "unmeasured" ]
  in
  List.iter
    (fun (label, loss, jitter) ->
      let engine = engine_for ctx ~loss ~jitter () in
      let points =
        Eval.evaluate_engine ~engine ~predicted ~severity ~worst_fraction:0.1
          ~thresholds:[ 0.5 ]
      in
      let p = List.hd points in
      let st = Engine.stats engine in
      Table.add_row alert_table
        [
          label;
          string_of_int p.Eval.alerts;
          Printf.sprintf "%.3f" p.Eval.accuracy;
          Printf.sprintf "%.3f" p.Eval.recall;
          string_of_int st.Probe_stats.failed;
        ])
    sweep;
  Table.print alert_table;

  (* Service mode: the TTL cache amortizes repeat Meridian probes under
     a per-node budget.  Same harsh faults, with and without cache. *)
  Report.note "service mode under harsh faults (budget 50 tokens @ 5/s per node):";
  let budget = Budget.per_node ~capacity:50. ~rate:5. in
  let svc_table =
    Table.create
      ~header:[ "mode"; "p50_penalty"; "failures"; "issued"; "denied"; "hit"; "stale" ]
  in
  List.iter
    (fun (mode, cache_ttl) ->
      let engine = engine_for ctx ~loss:0.1 ~jitter:0.2 ~budget ?cache_ttl () in
      let r =
        Experiment.run_meridian (Context.rng ctx 43) m ~runs:3
          ~termination:Query.Any_improvement ~engine ~meridian_count
          ~build:(Selectors.meridian_build m cfg) ()
      in
      let s = Stats.summarize r.Experiment.base.Experiment.penalties in
      let st = Engine.stats engine in
      Table.add_row svc_table
        [
          mode;
          Printf.sprintf "%.2f" s.Stats.p50;
          string_of_int r.Experiment.base.Experiment.failures;
          string_of_int st.Probe_stats.issued;
          string_of_int st.Probe_stats.denied;
          string_of_int st.Probe_stats.hits;
          string_of_int st.Probe_stats.stale;
        ])
    [ ("on-demand", None); ("cached ttl=60", Some 60.) ];
  Table.print svc_table

let register () =
  Registry.register "measure"
    "Probe engine: degradation under loss/jitter, budgets, caching" measure
