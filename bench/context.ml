(* Shared, lazily-computed experiment state.

   Most figures need the same expensive artifacts: the DS2-like delay
   space, its TIV severity matrix, a converged Vivaldi embedding and the
   prediction-ratio matrix derived from it.  Computing each exactly once
   keeps a full `bench/main.exe` run fast and guarantees every figure is
   looking at the same world. *)

module Rng = Tivaware_util.Rng
module Matrix = Tivaware_delay_space.Matrix
module Clustering = Tivaware_delay_space.Clustering
module Generator = Tivaware_topology.Generator
module Datasets = Tivaware_topology.Datasets
module Severity = Tivaware_tiv.Severity
module Alert = Tivaware_tiv.Alert
module System = Tivaware_vivaldi.System
module Selectors = Tivaware_core.Selectors

type t = {
  seed : int;
  size : int;  (* DS2-like node count *)
  vivaldi_rounds : int;
  obs : Tivaware_obs.Registry.t;
      (* the harness registry: figures may record headline gauges here
         and they land in the `--json` summary next to the wall times *)
  ds2 : Generator.t Lazy.t;
  severity : Matrix.t Lazy.t;
  severity_counts : (int * int * int) array Lazy.t;
  clustering : Clustering.assignment Lazy.t;
  vivaldi : System.t Lazy.t;
  ratios : Matrix.t Lazy.t;
}

let create ?(seed = 2007) ?(size = 560) ?(vivaldi_rounds = 200) ?obs () =
  let ds2 = lazy (Datasets.generate ~size ~seed Datasets.Ds2) in
  let severity_pair =
    lazy (Severity.all_with_counts (Lazy.force ds2).Generator.matrix)
  in
  let vivaldi =
    lazy
      (Selectors.embed_vivaldi ~rounds:vivaldi_rounds
         (Rng.create (seed + 11))
         (Lazy.force ds2).Generator.matrix)
  in
  {
    seed;
    size;
    vivaldi_rounds;
    obs =
      (match obs with
      | Some reg -> reg
      | None -> Tivaware_obs.Registry.create ());
    ds2;
    severity = lazy (fst (Lazy.force severity_pair));
    severity_counts = lazy (snd (Lazy.force severity_pair));
    clustering = lazy (Clustering.cluster (Lazy.force ds2).Generator.matrix);
    vivaldi;
    ratios =
      lazy
        (let system = Lazy.force vivaldi in
         Alert.ratio_matrix
           ~measured:(System.matrix system)
           ~predicted:(fun i j -> System.predicted system i j));
  }

let obs t = t.obs
let ds2 t = Lazy.force t.ds2
let matrix t = (ds2 t).Generator.matrix
let severity t = Lazy.force t.severity
let severity_counts t = Lazy.force t.severity_counts
let clustering t = Lazy.force t.clustering
let vivaldi t = Lazy.force t.vivaldi
let ratios t = Lazy.force t.ratios

let rng t salt = Rng.create ((t.seed * 7919) + salt)

(* Experiment scale knobs, kept proportional to the paper's 4000-node
   setup: 200/4000 candidates -> size/20; 2000/4000 Meridian nodes ->
   size/2; 200/4000 idealized Meridian nodes -> size/10 (a slightly
   larger share so rings are non-trivial at reduced scale). *)
let candidate_count t = max 20 (t.size / 20 * 2)
let meridian_count_normal t = t.size / 2
let meridian_count_ideal t = max 30 (t.size / 10)
